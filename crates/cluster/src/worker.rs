//! The worker process: owns partition state execution for its share of the
//! graph and speaks the frame protocol over loopback TCP.
//!
//! A worker binds an ephemeral (or explicitly requested) port, announces it
//! on stdout as `OPTIREC_WORKER_LISTENING <port>` — the coordinator reads
//! that line from the child's pipe — and then serves connections forever.
//! Each connection gets its own thread over one shared `WorkerState`, so
//! heartbeat probes (which never touch the state) are answered even while a
//! superstep is being computed on the control connection.
//!
//! Workers are deliberately crash-only: `Shutdown` exits the process, and
//! every other termination path is an abrupt connection loss that the
//! coordinator converts into a
//! [`dataflow::error::EngineError::WorkerLost`].

use std::collections::HashMap;
use std::io::{self, Write as _};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;

use parking_lot::Mutex;

use crate::program::{lookup, ClusterProgram};
use crate::protocol::{read_frame, write_frame, AdjRows, Message};

/// Marker line a worker prints to stdout once its listener is bound; the
/// rest of the line is the decimal port number.
pub const LISTENING_MARKER: &str = "OPTIREC_WORKER_LISTENING";

/// Program + adjacency installed by `LoadProgram`, shared across connections.
#[derive(Default)]
struct WorkerState {
    program: Option<Arc<dyn ClusterProgram>>,
    n: u64,
    adjacency: HashMap<u64, Arc<AdjRows>>,
}

/// Run a worker: bind `listen` (e.g. `"127.0.0.1:0"` for an ephemeral
/// port), announce the port on stdout, and serve connections until the
/// process is told to [`Message::Shutdown`] or killed.
pub fn run(listen: &str) -> io::Result<()> {
    let listener = TcpListener::bind(listen)?;
    let port = listener.local_addr()?.port();
    println!("{LISTENING_MARKER} {port}");
    io::stdout().flush()?;

    let shared = Arc::new(Mutex::new(WorkerState::default()));
    for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        let shared = shared.clone();
        thread::spawn(move || {
            // Connection teardown is the coordinator's problem: a worker
            // neither logs nor propagates per-connection errors.
            let _ = serve(stream, shared);
        });
    }
    Ok(())
}

fn serve(mut stream: TcpStream, shared: Arc<Mutex<WorkerState>>) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    loop {
        let msg = match read_frame(&mut stream, None) {
            Ok(msg) => msg,
            // Peer hung up between frames: a normal connection end.
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) => return Err(e),
        };
        match msg {
            Message::Hello { .. } => write_frame(&mut stream, &Message::Welcome, None)?,
            Message::LoadProgram { program, n, adjacency } => {
                let resolved = lookup(&program).ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unknown cluster program `{program}`"),
                    )
                })?;
                let mut state = shared.lock();
                state.program = Some(resolved);
                state.n = n;
                // A rejoining replacement receives its full partition set
                // again; stale assignments from before a redistribution are
                // dropped rather than merged.
                state.adjacency.clear();
                for (pid, rows) in adjacency {
                    state.adjacency.insert(pid, Arc::new(rows));
                }
                drop(state);
                write_frame(&mut stream, &Message::Welcome, None)?;
            }
            Message::RunStep { pid, superstep, step, state, inbound } => {
                let (program, rows, n) = {
                    let shared = shared.lock();
                    let program = shared.program.clone().ok_or_else(|| {
                        io::Error::new(io::ErrorKind::InvalidData, "RunStep before LoadProgram")
                    })?;
                    let rows = shared.adjacency.get(&pid).cloned().ok_or_else(|| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("RunStep for partition {pid} not owned by this worker"),
                        )
                    })?;
                    (program, rows, shared.n)
                };
                let out = program.step(step, &state, &inbound, &rows, n);
                write_frame(
                    &mut stream,
                    &Message::StepDone {
                        pid,
                        superstep,
                        state: out.state,
                        outbound: out.outbound,
                        changed: out.changed,
                    },
                    None,
                )?;
            }
            Message::Heartbeat { nonce } => {
                write_frame(&mut stream, &Message::HeartbeatAck { nonce }, None)?
            }
            Message::Shutdown => std::process::exit(0),
            unexpected @ (Message::Welcome
            | Message::StepDone { .. }
            | Message::HeartbeatAck { .. }) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("coordinator sent a worker-only message: {unexpected:?}"),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serve a single in-process worker on an ephemeral port (tests only —
    /// production workers are separate OS processes).
    fn spawn_local_worker() -> std::net::SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        thread::spawn(move || {
            let shared = Arc::new(Mutex::new(WorkerState::default()));
            for stream in listener.incoming().flatten() {
                let shared = shared.clone();
                thread::spawn(move || {
                    let _ = serve(stream, shared);
                });
            }
        });
        addr
    }

    #[test]
    fn worker_loads_a_program_and_steps_a_partition() {
        let addr = spawn_local_worker();
        let mut conn = TcpStream::connect(addr).unwrap();
        write_frame(&mut conn, &Message::Hello { worker: 0 }, None).unwrap();
        assert_eq!(read_frame(&mut conn, None).unwrap(), Message::Welcome);

        // Partition 0 of a 2-vertex path graph, single partition.
        write_frame(
            &mut conn,
            &Message::LoadProgram {
                program: "cc".into(),
                n: 2,
                adjacency: vec![(0, vec![(0, vec![1]), (1, vec![0])])],
            },
            None,
        )
        .unwrap();
        assert_eq!(read_frame(&mut conn, None).unwrap(), Message::Welcome);

        write_frame(
            &mut conn,
            &Message::RunStep {
                pid: 0,
                superstep: 1,
                step: 1,
                state: vec![(0, 0), (1, 1)],
                inbound: vec![(0, 1, 0)],
            },
            None,
        )
        .unwrap();
        match read_frame(&mut conn, None).unwrap() {
            Message::StepDone { pid, superstep, state, changed, .. } => {
                assert_eq!((pid, superstep), (0, 1));
                assert_eq!(state, vec![(0, 0), (1, 0)], "label 0 propagates to vertex 1");
                assert_eq!(changed, 1);
            }
            other => panic!("expected StepDone, got {other:?}"),
        }
    }

    #[test]
    fn heartbeats_are_answered_on_a_separate_connection() {
        let addr = spawn_local_worker();
        let mut hb = TcpStream::connect(addr).unwrap();
        for nonce in [1u64, 7, 99] {
            write_frame(&mut hb, &Message::Heartbeat { nonce }, None).unwrap();
            assert_eq!(read_frame(&mut hb, None).unwrap(), Message::HeartbeatAck { nonce });
        }
    }

    #[test]
    fn step_before_load_is_rejected_with_a_connection_drop() {
        let addr = spawn_local_worker();
        let mut conn = TcpStream::connect(addr).unwrap();
        write_frame(
            &mut conn,
            &Message::RunStep { pid: 0, superstep: 0, step: 0, state: vec![], inbound: vec![] },
            None,
        )
        .unwrap();
        // The handler thread errors out and closes the connection.
        let err = read_frame(&mut conn, None).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}
