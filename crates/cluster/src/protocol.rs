//! The cluster wire protocol: coordinator↔worker control frames and
//! worker↔worker data-plane frames.
//!
//! Every message travels as one *frame*: a little-endian `u32` payload length
//! followed by the payload, which is a [`Codec`]-encoded [`Message`] (a `u8`
//! tag plus the variant's fields). The same [`Codec`] trait serialises
//! checkpoints, so the cluster layer adds no second serialisation scheme.
//! Payload lengths are validated through [`checked_frame_len`] before any
//! byte is written: a payload beyond the `u32` prefix range (or the
//! [`MAX_FRAME_BYTES`] cap) fails loudly as
//! [`EngineError::FrameTooLarge`] instead of silently truncating the length
//! and corrupting the stream.
//!
//! Frame I/O optionally feeds the `net/bytes_in` / `net/bytes_out` counters
//! of the coordinator's metric registry — the length prefix is included, so
//! the counters reflect actual bytes on the wire. Under the direct data
//! plane those counters cover the *control* plane only; peer-to-peer
//! shuffle bytes are self-reported by workers via
//! [`SPAN_PHASE_PEER_BYTES`] telemetry rows.

use std::io::{self, Read, Write};

use dataflow::codec::{decode_exact, encode_to_vec, Codec};
use dataflow::error::{EngineError, Result};
use telemetry::metrics::Counter;

/// One record of distributed iteration state: `(vertex, value-bits)`.
///
/// The value is always carried as raw `u64` bits — Connected Components
/// stores a label directly, PageRank stores `f64::to_bits` of the rank — so
/// state crosses the wire without any float/int schema distinction and
/// byte-for-byte identical to the in-process representation.
pub type Record = (u64, u64);

/// One message exchanged between vertices: `(src, dst, value-bits)`.
pub type Msg = (u64, u64, u64);

/// Adjacency rows shipped to a worker for one partition: `(vertex, targets)`.
pub type AdjRows = Vec<(u64, Vec<u64>)>;

/// One timed phase inside a [`Message::TelemetryFrame`]:
/// `(pid, phase, records, duration_ns)`, where `phase` is
/// [`SPAN_PHASE_COMPUTE`] or [`SPAN_PHASE_SHUFFLE`].
pub type SpanRow = (u64, u64, u64, u64);

/// [`SpanRow`] phase code for the program's step function.
pub const SPAN_PHASE_COMPUTE: u64 = 0;
/// [`SpanRow`] phase code for encoding the reply frame for the wire.
pub const SPAN_PHASE_SHUFFLE: u64 = 1;
/// [`SpanRow`] phase code for the direct data plane's send work: routing a
/// partition's outbound messages into per-peer batches and writing full
/// batches to the peer sockets (overlapped with the remaining partitions'
/// compute). Fields: `(pid, phase, messages_routed, duration_ns)`.
pub const SPAN_PHASE_EXCHANGE: u64 = 2;
/// [`SpanRow`] phase code for per-peer data-plane byte accounting, reported
/// once per superstep per peer. Fields repurpose the row as
/// `(peer_worker, phase, bytes_sent, frames_sent)`.
pub const SPAN_PHASE_PEER_BYTES: u64 = 3;

/// Sentinel for [`Message::StepGo::inbound_superstep`] /
/// [`Message::StepReset::inbound_superstep`]: the step consumes no
/// data-plane inbox slot (the initial superstep, or a restart from
/// scratch).
pub const NO_INBOUND: u32 = u32::MAX;

/// Upper bound on a single frame's payload; a length prefix beyond this is
/// treated as stream corruption rather than an allocation request.
pub const MAX_FRAME_BYTES: u32 = 1 << 30;

/// A protocol message. Tags are part of the wire format — append new
/// variants, never renumber.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Coordinator → worker: first frame on the control connection.
    Hello {
        /// Coordinator-side index of the worker being greeted.
        worker: u64,
    },
    /// Worker → coordinator: generic acknowledgement (`Hello`, `LoadProgram`).
    Welcome,
    /// Coordinator → worker: install a named [`crate::program::ClusterProgram`]
    /// together with the loop-invariant adjacency of the partitions this
    /// worker owns. Re-sent in full when a replacement worker rejoins —
    /// this is the partition redistribution step of recovery.
    LoadProgram {
        /// Registry name of the program (`"cc"`, `"pagerank"`).
        program: String,
        /// Total number of vertices across all partitions.
        n: u64,
        /// Adjacency rows per owned partition: `(pid, rows)`.
        adjacency: Vec<(u64, AdjRows)>,
    },
    /// Coordinator → worker: run one partition's share of a superstep.
    RunStep {
        /// Partition to step.
        pid: u64,
        /// Chronological superstep (strictly increasing across retries; used
        /// to discard stale replies after a failed superstep).
        superstep: u32,
        /// Logical step index: the number of *committed* supersteps so far.
        /// Programs use it to special-case the first step; unlike the
        /// chronological superstep it does not advance on failed attempts.
        step: u64,
        /// The partition's current state.
        state: Vec<Record>,
        /// Inbound messages for this partition, sorted by `(src, dst, bits)`.
        inbound: Vec<Msg>,
    },
    /// Worker → coordinator: the result of one [`Message::RunStep`] or of
    /// one partition inside a [`Message::StepGo`] / [`Message::StepReset`].
    StepDone {
        /// Partition that was stepped.
        pid: u64,
        /// Echo of the request's chronological superstep.
        superstep: u32,
        /// The partition's new state, same vertex order as the request.
        state: Vec<Record>,
        /// Messages produced for the *next* superstep (any destination).
        /// Under the direct data plane this is empty unless the membership
        /// frame set `ship_outbound` (rollback strategies keep the
        /// coordinator's inbox copy authoritative); the messages themselves
        /// travel peer-to-peer as [`Message::ShuffleFrame`]s.
        outbound: Vec<Msg>,
        /// Records considered changed by the program's convergence test.
        changed: u64,
        /// Messages produced by this partition (counted before any
        /// data-plane routing), so shuffle statistics survive an empty
        /// `outbound`.
        shuffled: u64,
    },
    /// Coordinator → worker: liveness probe (dedicated connection).
    Heartbeat {
        /// Echo token matching probes to acks.
        nonce: u64,
    },
    /// Worker → coordinator: reply to [`Message::Heartbeat`].
    HeartbeatAck {
        /// The probe's nonce.
        nonce: u64,
    },
    /// Coordinator → worker: exit cleanly.
    Shutdown,
    /// Worker → coordinator: the worker-side telemetry batch for one
    /// [`Message::RunStep`], written on the control connection immediately
    /// *before* the matching [`Message::StepDone`] — so once the
    /// coordinator has collected every `StepDone` of a superstep, TCP
    /// ordering guarantees it has already seen every telemetry frame, and
    /// the frames can be merged into the journal in causal
    /// `(superstep, worker, seq)` order with no extra drain round.
    TelemetryFrame {
        /// The worker's coordinator-side index (from [`Message::Hello`]).
        worker: u64,
        /// Echo of the request's chronological superstep; stale frames from
        /// a failed superstep are discarded like stale `StepDone`s.
        superstep: u32,
        /// Emission sequence within this `(worker, superstep)`, restarting
        /// at zero each superstep — the deterministic merge key.
        seq: u64,
        /// Timed phases, in worker-local execution order.
        spans: Vec<SpanRow>,
    },
    /// Coordinator → worker: the asynchronous-snapshot barrier marker
    /// carrying one partition chunk for the worker to stage locally. The
    /// worker keeps chunks per epoch so a coordinator restart can pull the
    /// last complete snapshot back; staging replaces any chunk previously
    /// held for the same `(epoch, pid)`.
    SnapshotBarrier {
        /// The snapshot epoch (the barrier's iteration).
        epoch: u32,
        /// Partition the chunk captures.
        pid: u64,
        /// The encoded partition chunk.
        chunk: Vec<u8>,
    },
    /// Worker → coordinator: acknowledges one staged [`Message::SnapshotBarrier`]
    /// chunk, confirming durability before the epoch counts as complete.
    SnapshotAck {
        /// Echo of the barrier's epoch.
        epoch: u32,
        /// Echo of the chunk's partition.
        pid: u64,
        /// Bytes staged for this chunk.
        bytes: u64,
    },
    /// Coordinator → worker: the cluster's current membership, enabling the
    /// direct data plane. Re-broadcast with a bumped `epoch` after every
    /// respawn; each worker (re)connects its outgoing peer links and drops
    /// data-plane frames tagged with any other epoch. Acked with
    /// [`Message::Welcome`] once the worker's peer links are up. Never sent
    /// in coordinator-routed mode, which is how workers know which mode a
    /// run uses.
    Membership {
        /// Membership epoch; bumped on every (re)broadcast.
        epoch: u64,
        /// Number of partitions (destination routing: `dst % parallelism`).
        parallelism: u64,
        /// Non-zero when workers must piggyback their outbound messages in
        /// [`Message::StepDone`] so the coordinator's inbox copy stays
        /// authoritative (required by rollback strategies' channel
        /// captures).
        ship_outbound: u64,
        /// How long a worker waits for data-plane completeness before
        /// reporting [`Message::StepFailed`], in milliseconds.
        data_timeout_ms: u64,
        /// Listener address of every member: `(worker, port)`, loopback.
        peers: Vec<(u64, u64)>,
    },
    /// Worker → worker: the first frame on an outgoing peer connection,
    /// identifying the sender and its membership epoch.
    PeerHello {
        /// Coordinator-side index of the connecting worker.
        from_worker: u64,
        /// The sender's membership epoch at connect time.
        epoch: u64,
    },
    /// Worker → worker: one batch of shuffle messages produced during
    /// `superstep`, destined to partitions the receiving worker owns.
    ShuffleFrame {
        /// Producing worker.
        from_worker: u64,
        /// The producer's membership epoch; receivers drop frames from any
        /// other epoch (a straggler declared dead cannot double-deliver).
        epoch: u64,
        /// Chronological superstep that *produced* these messages. The
        /// consuming step names this tag explicitly, so output of failed
        /// attempts is never consumed.
        superstep: u32,
        /// The messages.
        msgs: Vec<Msg>,
    },
    /// Worker → worker: end-of-superstep marker on the data plane — the
    /// producer has no more [`Message::ShuffleFrame`]s for `superstep`. A
    /// receiver's inbox slot is complete once every current member flushed.
    ShuffleFlush {
        /// Producing worker.
        from_worker: u64,
        /// The producer's membership epoch.
        epoch: u64,
        /// Chronological superstep being flushed.
        superstep: u32,
        /// Data frames this producer sent to this peer for `superstep`.
        frames: u64,
        /// Wire bytes (including length prefixes) behind those frames.
        bytes: u64,
    },
    /// Coordinator → worker: run one superstep over all of the worker's
    /// partitions from its cached state, consuming the data-plane inbox slot
    /// named by `inbound_superstep`. The cheap steady-state dispatch of the
    /// direct data plane — state travels down only in [`Message::StepReset`].
    StepGo {
        /// Chronological superstep.
        superstep: u32,
        /// Logical step index (committed supersteps so far).
        step: u64,
        /// Chronological superstep whose data-plane output to consume, or
        /// [`NO_INBOUND`] for an empty inbound.
        inbound_superstep: u32,
        /// The worker's partitions, ascending; replies come back in this
        /// order.
        pids: Vec<u64>,
    },
    /// Coordinator → worker: like [`Message::StepGo`], but pushes
    /// authoritative partition state first — the recovery/retry dispatch
    /// (first superstep, post-failure retries, rollback restores).
    StepReset {
        /// Chronological superstep.
        superstep: u32,
        /// Logical step index.
        step: u64,
        /// Chronological superstep whose data-plane output to consume when
        /// `use_wire_inbound` is zero, or [`NO_INBOUND`].
        inbound_superstep: u32,
        /// Non-zero: compute from the pushed `inboxes` (rollback restores
        /// an exact channel capture). Zero: compute from whatever the
        /// retained data-plane slot holds (optimistic recovery — a
        /// respawned worker's empty slot is compensated for by the
        /// algorithm).
        use_wire_inbound: u64,
        /// Authoritative state per owned partition: `(pid, records)`.
        parts: Vec<(u64, Vec<Record>)>,
        /// Pushed inbound messages per owned partition: `(pid, msgs)`;
        /// meaningful only when `use_wire_inbound` is non-zero.
        inboxes: Vec<(u64, Vec<Msg>)>,
    },
    /// Worker → coordinator: the worker timed out waiting for data-plane
    /// completeness and computed nothing for `superstep`. The coordinator
    /// treats the first peer in `waiting_on` as lost.
    StepFailed {
        /// Chronological superstep that could not start.
        superstep: u32,
        /// Members whose [`Message::ShuffleFlush`] never arrived.
        waiting_on: Vec<u64>,
    },
    /// Coordinator → worker: this worker is joining a computation already in
    /// progress (a scale-up at a superstep barrier). Purely informational —
    /// the partitions themselves arrive via the usual
    /// [`Message::LoadProgram`] reship and state via
    /// [`Message::StepReset`] — but it tells the worker which superstep the
    /// cluster is at so its logs and telemetry line up. Acked with
    /// [`Message::Welcome`].
    WorkerJoin {
        /// The joining worker's coordinator-side index.
        worker: u64,
        /// Chronological superstep the cluster will run next.
        superstep: u32,
    },
    /// Coordinator → worker: this worker is leaving the computation at a
    /// superstep barrier (a scale-down — a planned
    /// [`WorkerLost`](dataflow::error::EngineError::WorkerLost) with a
    /// graceful drain instead of a kill). The worker acknowledges with
    /// [`Message::Welcome`] once it has flushed any in-flight data-plane
    /// output, then waits for the [`Message::Shutdown`] that follows. Its
    /// partitions have already been reassigned under a new map version; any
    /// straggling frames it emits afterwards carry the old epoch and are
    /// dropped by peers.
    Drain {
        /// Chronological superstep at which the drain was scheduled.
        superstep: u32,
    },
    /// Coordinator → worker: the current partition → worker assignment,
    /// broadcast immediately after [`Message::Membership`] under the same
    /// epoch in direct mode. Workers route outbound messages by this table
    /// (`assignment[dst % parallelism]`) instead of assuming `pid % members`,
    /// which is what lets partitions move between workers mid-run. Acked
    /// with [`Message::Welcome`]; a frame whose `epoch` is not the worker's
    /// current membership epoch is ignored (stale).
    MapUpdate {
        /// Membership epoch this map was broadcast under.
        epoch: u64,
        /// Placement map version (see `placement::PartitionMap`).
        version: u64,
        /// `assignment[pid]` = owning worker index.
        assignment: Vec<u64>,
    },
}

impl Codec for Message {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Message::Hello { worker } => {
                out.push(0);
                worker.encode(out);
            }
            Message::Welcome => out.push(1),
            Message::LoadProgram { program, n, adjacency } => {
                out.push(2);
                program.encode(out);
                n.encode(out);
                adjacency.encode(out);
            }
            Message::RunStep { pid, superstep, step, state, inbound } => {
                out.push(3);
                pid.encode(out);
                superstep.encode(out);
                step.encode(out);
                state.encode(out);
                inbound.encode(out);
            }
            Message::StepDone { pid, superstep, state, outbound, changed, shuffled } => {
                out.push(4);
                pid.encode(out);
                superstep.encode(out);
                state.encode(out);
                outbound.encode(out);
                changed.encode(out);
                shuffled.encode(out);
            }
            Message::Heartbeat { nonce } => {
                out.push(5);
                nonce.encode(out);
            }
            Message::HeartbeatAck { nonce } => {
                out.push(6);
                nonce.encode(out);
            }
            Message::Shutdown => out.push(7),
            Message::TelemetryFrame { worker, superstep, seq, spans } => {
                out.push(8);
                worker.encode(out);
                superstep.encode(out);
                seq.encode(out);
                spans.encode(out);
            }
            Message::SnapshotBarrier { epoch, pid, chunk } => {
                out.push(9);
                epoch.encode(out);
                pid.encode(out);
                chunk.encode(out);
            }
            Message::SnapshotAck { epoch, pid, bytes } => {
                out.push(10);
                epoch.encode(out);
                pid.encode(out);
                bytes.encode(out);
            }
            Message::Membership { epoch, parallelism, ship_outbound, data_timeout_ms, peers } => {
                out.push(11);
                epoch.encode(out);
                parallelism.encode(out);
                ship_outbound.encode(out);
                data_timeout_ms.encode(out);
                peers.encode(out);
            }
            Message::PeerHello { from_worker, epoch } => {
                out.push(12);
                from_worker.encode(out);
                epoch.encode(out);
            }
            Message::ShuffleFrame { from_worker, epoch, superstep, msgs } => {
                out.push(13);
                from_worker.encode(out);
                epoch.encode(out);
                superstep.encode(out);
                msgs.encode(out);
            }
            Message::ShuffleFlush { from_worker, epoch, superstep, frames, bytes } => {
                out.push(14);
                from_worker.encode(out);
                epoch.encode(out);
                superstep.encode(out);
                frames.encode(out);
                bytes.encode(out);
            }
            Message::StepGo { superstep, step, inbound_superstep, pids } => {
                out.push(15);
                superstep.encode(out);
                step.encode(out);
                inbound_superstep.encode(out);
                pids.encode(out);
            }
            Message::StepReset {
                superstep,
                step,
                inbound_superstep,
                use_wire_inbound,
                parts,
                inboxes,
            } => {
                out.push(16);
                superstep.encode(out);
                step.encode(out);
                inbound_superstep.encode(out);
                use_wire_inbound.encode(out);
                parts.encode(out);
                inboxes.encode(out);
            }
            Message::StepFailed { superstep, waiting_on } => {
                out.push(17);
                superstep.encode(out);
                waiting_on.encode(out);
            }
            Message::WorkerJoin { worker, superstep } => {
                out.push(18);
                worker.encode(out);
                superstep.encode(out);
            }
            Message::Drain { superstep } => {
                out.push(19);
                superstep.encode(out);
            }
            Message::MapUpdate { epoch, version, assignment } => {
                out.push(20);
                epoch.encode(out);
                version.encode(out);
                assignment.encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self> {
        let tag = u8::decode(input)?;
        Ok(match tag {
            0 => Message::Hello { worker: u64::decode(input)? },
            1 => Message::Welcome,
            2 => Message::LoadProgram {
                program: String::decode(input)?,
                n: u64::decode(input)?,
                adjacency: Vec::decode(input)?,
            },
            3 => Message::RunStep {
                pid: u64::decode(input)?,
                superstep: u32::decode(input)?,
                step: u64::decode(input)?,
                state: Vec::decode(input)?,
                inbound: Vec::decode(input)?,
            },
            4 => Message::StepDone {
                pid: u64::decode(input)?,
                superstep: u32::decode(input)?,
                state: Vec::decode(input)?,
                outbound: Vec::decode(input)?,
                changed: u64::decode(input)?,
                shuffled: u64::decode(input)?,
            },
            5 => Message::Heartbeat { nonce: u64::decode(input)? },
            6 => Message::HeartbeatAck { nonce: u64::decode(input)? },
            7 => Message::Shutdown,
            8 => Message::TelemetryFrame {
                worker: u64::decode(input)?,
                superstep: u32::decode(input)?,
                seq: u64::decode(input)?,
                spans: Vec::decode(input)?,
            },
            9 => Message::SnapshotBarrier {
                epoch: u32::decode(input)?,
                pid: u64::decode(input)?,
                chunk: Vec::decode(input)?,
            },
            10 => Message::SnapshotAck {
                epoch: u32::decode(input)?,
                pid: u64::decode(input)?,
                bytes: u64::decode(input)?,
            },
            11 => Message::Membership {
                epoch: u64::decode(input)?,
                parallelism: u64::decode(input)?,
                ship_outbound: u64::decode(input)?,
                data_timeout_ms: u64::decode(input)?,
                peers: Vec::decode(input)?,
            },
            12 => {
                Message::PeerHello { from_worker: u64::decode(input)?, epoch: u64::decode(input)? }
            }
            13 => Message::ShuffleFrame {
                from_worker: u64::decode(input)?,
                epoch: u64::decode(input)?,
                superstep: u32::decode(input)?,
                msgs: Vec::decode(input)?,
            },
            14 => Message::ShuffleFlush {
                from_worker: u64::decode(input)?,
                epoch: u64::decode(input)?,
                superstep: u32::decode(input)?,
                frames: u64::decode(input)?,
                bytes: u64::decode(input)?,
            },
            15 => Message::StepGo {
                superstep: u32::decode(input)?,
                step: u64::decode(input)?,
                inbound_superstep: u32::decode(input)?,
                pids: Vec::decode(input)?,
            },
            16 => Message::StepReset {
                superstep: u32::decode(input)?,
                step: u64::decode(input)?,
                inbound_superstep: u32::decode(input)?,
                use_wire_inbound: u64::decode(input)?,
                parts: Vec::decode(input)?,
                inboxes: Vec::decode(input)?,
            },
            17 => Message::StepFailed {
                superstep: u32::decode(input)?,
                waiting_on: Vec::decode(input)?,
            },
            18 => {
                Message::WorkerJoin { worker: u64::decode(input)?, superstep: u32::decode(input)? }
            }
            19 => Message::Drain { superstep: u32::decode(input)? },
            20 => Message::MapUpdate {
                epoch: u64::decode(input)?,
                version: u64::decode(input)?,
                assignment: Vec::decode(input)?,
            },
            other => {
                return Err(EngineError::Codec(format!("unknown cluster message tag {other}")))
            }
        })
    }
}

/// Write `msg` as one frame, flush, and count the bytes into `bytes_out`.
pub fn write_frame(
    w: &mut impl Write,
    msg: &Message,
    bytes_out: Option<&Counter>,
) -> io::Result<()> {
    let payload = encode_to_vec(msg);
    write_encoded_frame(w, &payload, bytes_out)
}

/// Validate a payload size against the frame format's `u32` length prefix
/// and the [`MAX_FRAME_BYTES`] cap. Every frame write routes through this
/// check *before* any byte hits the wire: an unchecked `len as u32` would
/// silently truncate a >4 GiB payload and desynchronise the stream for
/// every later frame. Returns [`EngineError::FrameTooLarge`] on overflow.
pub fn checked_frame_len(payload_len: usize) -> Result<u32> {
    u32::try_from(payload_len).ok().filter(|&len| len <= MAX_FRAME_BYTES).ok_or(
        EngineError::FrameTooLarge { len: payload_len as u64, max: u64::from(MAX_FRAME_BYTES) },
    )
}

/// Write an already-encoded message payload as one frame. Split out of
/// [`write_frame`] so the worker can time encoding (the telemetry
/// "shuffle" phase) separately from the socket write.
pub fn write_encoded_frame(
    w: &mut impl Write,
    payload: &[u8],
    bytes_out: Option<&Counter>,
) -> io::Result<()> {
    let len = checked_frame_len(payload.len())
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    if let Some(counter) = bytes_out {
        counter.add(4 + payload.len() as u64);
    }
    Ok(())
}

/// Read one frame, counting the bytes into `bytes_in`. Decode failures and
/// oversized length prefixes surface as [`io::ErrorKind::InvalidData`]; a
/// clean EOF before the length prefix surfaces as
/// [`io::ErrorKind::UnexpectedEof`].
pub fn read_frame(r: &mut impl Read, bytes_in: Option<&Counter>) -> io::Result<Message> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length prefix {len} exceeds MAX_FRAME_BYTES (corrupt stream?)"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    if let Some(counter) = bytes_in {
        counter.add(4 + u64::from(len));
    }
    decode_exact::<Message>(&payload)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: Message) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &msg, None).unwrap();
        let decoded = read_frame(&mut buf.as_slice(), None).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn every_variant_round_trips() {
        round_trip(Message::Hello { worker: 3 });
        round_trip(Message::Welcome);
        round_trip(Message::LoadProgram {
            program: "cc".into(),
            n: 10,
            adjacency: vec![(0, vec![(0, vec![1, 2]), (2, vec![0])]), (1, vec![(1, vec![0])])],
        });
        round_trip(Message::RunStep {
            pid: 1,
            superstep: 4,
            step: 3,
            state: vec![(1, 1), (3, 0)],
            inbound: vec![(0, 1, 0), (2, 3, 7)],
        });
        round_trip(Message::StepDone {
            pid: 1,
            superstep: 4,
            state: vec![(1, 0)],
            outbound: vec![(1, 0, 0)],
            changed: 1,
            shuffled: 7,
        });
        round_trip(Message::Heartbeat { nonce: 42 });
        round_trip(Message::HeartbeatAck { nonce: 42 });
        round_trip(Message::Shutdown);
        round_trip(Message::TelemetryFrame {
            worker: 1,
            superstep: 4,
            seq: 2,
            spans: vec![(1, SPAN_PHASE_COMPUTE, 12, 1_500), (1, SPAN_PHASE_SHUFFLE, 12, 900)],
        });
        round_trip(Message::SnapshotBarrier { epoch: 6, pid: 2, chunk: vec![1, 2, 3, 255] });
        round_trip(Message::SnapshotAck { epoch: 6, pid: 2, bytes: 4 });
        round_trip(Message::Membership {
            epoch: 3,
            parallelism: 8,
            ship_outbound: 1,
            data_timeout_ms: 2_500,
            peers: vec![(0, 40_001), (1, 40_002), (2, 40_003)],
        });
        round_trip(Message::PeerHello { from_worker: 2, epoch: 3 });
        round_trip(Message::ShuffleFrame {
            from_worker: 1,
            epoch: 3,
            superstep: 9,
            msgs: vec![(0, 4, 17), (1, 6, 2)],
        });
        round_trip(Message::ShuffleFlush {
            from_worker: 1,
            epoch: 3,
            superstep: 9,
            frames: 2,
            bytes: 96,
        });
        round_trip(Message::StepGo {
            superstep: 9,
            step: 8,
            inbound_superstep: 8,
            pids: vec![1, 3],
        });
        round_trip(Message::StepReset {
            superstep: 10,
            step: 8,
            inbound_superstep: NO_INBOUND,
            use_wire_inbound: 1,
            parts: vec![(1, vec![(1, 1), (5, 1)]), (3, vec![(3, 3)])],
            inboxes: vec![(1, vec![(1, 1, 0)]), (3, vec![])],
        });
        round_trip(Message::StepFailed { superstep: 10, waiting_on: vec![0, 2] });
        round_trip(Message::WorkerJoin { worker: 2, superstep: 11 });
        round_trip(Message::Drain { superstep: 11 });
        round_trip(Message::MapUpdate { epoch: 4, version: 2, assignment: vec![0, 1, 2, 0] });
    }

    #[test]
    fn frame_len_boundaries_are_checked() {
        assert_eq!(checked_frame_len(0).unwrap(), 0);
        assert_eq!(checked_frame_len(MAX_FRAME_BYTES as usize).unwrap(), MAX_FRAME_BYTES);
        let err = checked_frame_len(MAX_FRAME_BYTES as usize + 1).unwrap_err();
        assert!(
            matches!(err, EngineError::FrameTooLarge { len, max }
                if len == u64::from(MAX_FRAME_BYTES) + 1 && max == u64::from(MAX_FRAME_BYTES)),
            "{err}"
        );
        // A payload past u32::MAX must fail the checked conversion rather
        // than silently truncate the way `len as u32` used to.
        let err = checked_frame_len(u32::MAX as usize + 10).unwrap_err();
        assert!(err.to_string().contains("frame too large"), "{err}");
        assert!(err.to_string().contains(&u64::from(MAX_FRAME_BYTES).to_string()), "{err}");
    }

    #[test]
    fn byte_counters_include_the_length_prefix() {
        let counter = Counter::default();
        let mut buf = Vec::new();
        write_frame(&mut buf, &Message::Welcome, Some(&counter)).unwrap();
        assert_eq!(counter.get(), buf.len() as u64);
        let read_counter = Counter::default();
        read_frame(&mut buf.as_slice(), Some(&read_counter)).unwrap();
        assert_eq!(read_counter.get(), buf.len() as u64);
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut bad = (MAX_FRAME_BYTES + 1).to_le_bytes().to_vec();
        bad.extend_from_slice(&[0u8; 8]);
        let err = read_frame(&mut bad.as_slice(), None).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frame_reports_unexpected_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Message::Hello { worker: 1 }, None).unwrap();
        buf.truncate(buf.len() - 1);
        let err = read_frame(&mut buf.as_slice(), None).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn unknown_tag_is_a_decode_error() {
        let payload = vec![99u8];
        let mut buf = (payload.len() as u32).to_le_bytes().to_vec();
        buf.extend_from_slice(&payload);
        let err = read_frame(&mut buf.as_slice(), None).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("unknown cluster message tag"), "{err}");
    }
}
