//! The coordinator↔worker wire protocol.
//!
//! Every message travels as one *frame*: a little-endian `u32` payload length
//! followed by the payload, which is a [`Codec`]-encoded [`Message`] (a `u8`
//! tag plus the variant's fields). The same [`Codec`] trait serialises
//! checkpoints, so the cluster layer adds no second serialisation scheme.
//!
//! Frame I/O optionally feeds the `net/bytes_in` / `net/bytes_out` counters
//! of the coordinator's metric registry — the length prefix is included, so
//! the counters reflect actual bytes on the wire.

use std::io::{self, Read, Write};

use dataflow::codec::{decode_exact, encode_to_vec, Codec};
use dataflow::error::{EngineError, Result};
use telemetry::metrics::Counter;

/// One record of distributed iteration state: `(vertex, value-bits)`.
///
/// The value is always carried as raw `u64` bits — Connected Components
/// stores a label directly, PageRank stores `f64::to_bits` of the rank — so
/// state crosses the wire without any float/int schema distinction and
/// byte-for-byte identical to the in-process representation.
pub type Record = (u64, u64);

/// One message exchanged between vertices: `(src, dst, value-bits)`.
pub type Msg = (u64, u64, u64);

/// Adjacency rows shipped to a worker for one partition: `(vertex, targets)`.
pub type AdjRows = Vec<(u64, Vec<u64>)>;

/// One timed phase inside a [`Message::TelemetryFrame`]:
/// `(pid, phase, records, duration_ns)`, where `phase` is
/// [`SPAN_PHASE_COMPUTE`] or [`SPAN_PHASE_SHUFFLE`].
pub type SpanRow = (u64, u64, u64, u64);

/// [`SpanRow`] phase code for the program's step function.
pub const SPAN_PHASE_COMPUTE: u64 = 0;
/// [`SpanRow`] phase code for encoding the reply frame for the wire.
pub const SPAN_PHASE_SHUFFLE: u64 = 1;

/// Upper bound on a single frame's payload; a length prefix beyond this is
/// treated as stream corruption rather than an allocation request.
pub const MAX_FRAME_BYTES: u32 = 1 << 30;

/// A protocol message. Tags are part of the wire format — append new
/// variants, never renumber.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Coordinator → worker: first frame on the control connection.
    Hello {
        /// Coordinator-side index of the worker being greeted.
        worker: u64,
    },
    /// Worker → coordinator: generic acknowledgement (`Hello`, `LoadProgram`).
    Welcome,
    /// Coordinator → worker: install a named [`crate::program::ClusterProgram`]
    /// together with the loop-invariant adjacency of the partitions this
    /// worker owns. Re-sent in full when a replacement worker rejoins —
    /// this is the partition redistribution step of recovery.
    LoadProgram {
        /// Registry name of the program (`"cc"`, `"pagerank"`).
        program: String,
        /// Total number of vertices across all partitions.
        n: u64,
        /// Adjacency rows per owned partition: `(pid, rows)`.
        adjacency: Vec<(u64, AdjRows)>,
    },
    /// Coordinator → worker: run one partition's share of a superstep.
    RunStep {
        /// Partition to step.
        pid: u64,
        /// Chronological superstep (strictly increasing across retries; used
        /// to discard stale replies after a failed superstep).
        superstep: u32,
        /// Logical step index: the number of *committed* supersteps so far.
        /// Programs use it to special-case the first step; unlike the
        /// chronological superstep it does not advance on failed attempts.
        step: u64,
        /// The partition's current state.
        state: Vec<Record>,
        /// Inbound messages for this partition, sorted by `(src, dst, bits)`.
        inbound: Vec<Msg>,
    },
    /// Worker → coordinator: the result of one [`Message::RunStep`].
    StepDone {
        /// Partition that was stepped.
        pid: u64,
        /// Echo of the request's chronological superstep.
        superstep: u32,
        /// The partition's new state, same vertex order as the request.
        state: Vec<Record>,
        /// Messages produced for the *next* superstep (any destination).
        outbound: Vec<Msg>,
        /// Records considered changed by the program's convergence test.
        changed: u64,
    },
    /// Coordinator → worker: liveness probe (dedicated connection).
    Heartbeat {
        /// Echo token matching probes to acks.
        nonce: u64,
    },
    /// Worker → coordinator: reply to [`Message::Heartbeat`].
    HeartbeatAck {
        /// The probe's nonce.
        nonce: u64,
    },
    /// Coordinator → worker: exit cleanly.
    Shutdown,
    /// Worker → coordinator: the worker-side telemetry batch for one
    /// [`Message::RunStep`], written on the control connection immediately
    /// *before* the matching [`Message::StepDone`] — so once the
    /// coordinator has collected every `StepDone` of a superstep, TCP
    /// ordering guarantees it has already seen every telemetry frame, and
    /// the frames can be merged into the journal in causal
    /// `(superstep, worker, seq)` order with no extra drain round.
    TelemetryFrame {
        /// The worker's coordinator-side index (from [`Message::Hello`]).
        worker: u64,
        /// Echo of the request's chronological superstep; stale frames from
        /// a failed superstep are discarded like stale `StepDone`s.
        superstep: u32,
        /// Emission sequence within this `(worker, superstep)`, restarting
        /// at zero each superstep — the deterministic merge key.
        seq: u64,
        /// Timed phases, in worker-local execution order.
        spans: Vec<SpanRow>,
    },
    /// Coordinator → worker: the asynchronous-snapshot barrier marker
    /// carrying one partition chunk for the worker to stage locally. The
    /// worker keeps chunks per epoch so a coordinator restart can pull the
    /// last complete snapshot back; staging replaces any chunk previously
    /// held for the same `(epoch, pid)`.
    SnapshotBarrier {
        /// The snapshot epoch (the barrier's iteration).
        epoch: u32,
        /// Partition the chunk captures.
        pid: u64,
        /// The encoded partition chunk.
        chunk: Vec<u8>,
    },
    /// Worker → coordinator: acknowledges one staged [`Message::SnapshotBarrier`]
    /// chunk, confirming durability before the epoch counts as complete.
    SnapshotAck {
        /// Echo of the barrier's epoch.
        epoch: u32,
        /// Echo of the chunk's partition.
        pid: u64,
        /// Bytes staged for this chunk.
        bytes: u64,
    },
}

impl Codec for Message {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Message::Hello { worker } => {
                out.push(0);
                worker.encode(out);
            }
            Message::Welcome => out.push(1),
            Message::LoadProgram { program, n, adjacency } => {
                out.push(2);
                program.encode(out);
                n.encode(out);
                adjacency.encode(out);
            }
            Message::RunStep { pid, superstep, step, state, inbound } => {
                out.push(3);
                pid.encode(out);
                superstep.encode(out);
                step.encode(out);
                state.encode(out);
                inbound.encode(out);
            }
            Message::StepDone { pid, superstep, state, outbound, changed } => {
                out.push(4);
                pid.encode(out);
                superstep.encode(out);
                state.encode(out);
                outbound.encode(out);
                changed.encode(out);
            }
            Message::Heartbeat { nonce } => {
                out.push(5);
                nonce.encode(out);
            }
            Message::HeartbeatAck { nonce } => {
                out.push(6);
                nonce.encode(out);
            }
            Message::Shutdown => out.push(7),
            Message::TelemetryFrame { worker, superstep, seq, spans } => {
                out.push(8);
                worker.encode(out);
                superstep.encode(out);
                seq.encode(out);
                spans.encode(out);
            }
            Message::SnapshotBarrier { epoch, pid, chunk } => {
                out.push(9);
                epoch.encode(out);
                pid.encode(out);
                chunk.encode(out);
            }
            Message::SnapshotAck { epoch, pid, bytes } => {
                out.push(10);
                epoch.encode(out);
                pid.encode(out);
                bytes.encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self> {
        let tag = u8::decode(input)?;
        Ok(match tag {
            0 => Message::Hello { worker: u64::decode(input)? },
            1 => Message::Welcome,
            2 => Message::LoadProgram {
                program: String::decode(input)?,
                n: u64::decode(input)?,
                adjacency: Vec::decode(input)?,
            },
            3 => Message::RunStep {
                pid: u64::decode(input)?,
                superstep: u32::decode(input)?,
                step: u64::decode(input)?,
                state: Vec::decode(input)?,
                inbound: Vec::decode(input)?,
            },
            4 => Message::StepDone {
                pid: u64::decode(input)?,
                superstep: u32::decode(input)?,
                state: Vec::decode(input)?,
                outbound: Vec::decode(input)?,
                changed: u64::decode(input)?,
            },
            5 => Message::Heartbeat { nonce: u64::decode(input)? },
            6 => Message::HeartbeatAck { nonce: u64::decode(input)? },
            7 => Message::Shutdown,
            8 => Message::TelemetryFrame {
                worker: u64::decode(input)?,
                superstep: u32::decode(input)?,
                seq: u64::decode(input)?,
                spans: Vec::decode(input)?,
            },
            9 => Message::SnapshotBarrier {
                epoch: u32::decode(input)?,
                pid: u64::decode(input)?,
                chunk: Vec::decode(input)?,
            },
            10 => Message::SnapshotAck {
                epoch: u32::decode(input)?,
                pid: u64::decode(input)?,
                bytes: u64::decode(input)?,
            },
            other => {
                return Err(EngineError::Codec(format!("unknown cluster message tag {other}")))
            }
        })
    }
}

/// Write `msg` as one frame, flush, and count the bytes into `bytes_out`.
pub fn write_frame(
    w: &mut impl Write,
    msg: &Message,
    bytes_out: Option<&Counter>,
) -> io::Result<()> {
    let payload = encode_to_vec(msg);
    write_encoded_frame(w, &payload, bytes_out)
}

/// Write an already-encoded message payload as one frame. Split out of
/// [`write_frame`] so the worker can time encoding (the telemetry
/// "shuffle" phase) separately from the socket write.
pub fn write_encoded_frame(
    w: &mut impl Write,
    payload: &[u8],
    bytes_out: Option<&Counter>,
) -> io::Result<()> {
    let len = u32::try_from(payload.len()).ok().filter(|&len| len <= MAX_FRAME_BYTES).ok_or_else(
        || {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("frame of {} bytes exceeds MAX_FRAME_BYTES", payload.len()),
            )
        },
    )?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    if let Some(counter) = bytes_out {
        counter.add(4 + payload.len() as u64);
    }
    Ok(())
}

/// Read one frame, counting the bytes into `bytes_in`. Decode failures and
/// oversized length prefixes surface as [`io::ErrorKind::InvalidData`]; a
/// clean EOF before the length prefix surfaces as
/// [`io::ErrorKind::UnexpectedEof`].
pub fn read_frame(r: &mut impl Read, bytes_in: Option<&Counter>) -> io::Result<Message> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length prefix {len} exceeds MAX_FRAME_BYTES (corrupt stream?)"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    if let Some(counter) = bytes_in {
        counter.add(4 + u64::from(len));
    }
    decode_exact::<Message>(&payload)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: Message) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &msg, None).unwrap();
        let decoded = read_frame(&mut buf.as_slice(), None).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn every_variant_round_trips() {
        round_trip(Message::Hello { worker: 3 });
        round_trip(Message::Welcome);
        round_trip(Message::LoadProgram {
            program: "cc".into(),
            n: 10,
            adjacency: vec![(0, vec![(0, vec![1, 2]), (2, vec![0])]), (1, vec![(1, vec![0])])],
        });
        round_trip(Message::RunStep {
            pid: 1,
            superstep: 4,
            step: 3,
            state: vec![(1, 1), (3, 0)],
            inbound: vec![(0, 1, 0), (2, 3, 7)],
        });
        round_trip(Message::StepDone {
            pid: 1,
            superstep: 4,
            state: vec![(1, 0)],
            outbound: vec![(1, 0, 0)],
            changed: 1,
        });
        round_trip(Message::Heartbeat { nonce: 42 });
        round_trip(Message::HeartbeatAck { nonce: 42 });
        round_trip(Message::Shutdown);
        round_trip(Message::TelemetryFrame {
            worker: 1,
            superstep: 4,
            seq: 2,
            spans: vec![(1, SPAN_PHASE_COMPUTE, 12, 1_500), (1, SPAN_PHASE_SHUFFLE, 12, 900)],
        });
        round_trip(Message::SnapshotBarrier { epoch: 6, pid: 2, chunk: vec![1, 2, 3, 255] });
        round_trip(Message::SnapshotAck { epoch: 6, pid: 2, bytes: 4 });
    }

    #[test]
    fn byte_counters_include_the_length_prefix() {
        let counter = Counter::default();
        let mut buf = Vec::new();
        write_frame(&mut buf, &Message::Welcome, Some(&counter)).unwrap();
        assert_eq!(counter.get(), buf.len() as u64);
        let read_counter = Counter::default();
        read_frame(&mut buf.as_slice(), Some(&read_counter)).unwrap();
        assert_eq!(read_counter.get(), buf.len() as u64);
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut bad = (MAX_FRAME_BYTES + 1).to_le_bytes().to_vec();
        bad.extend_from_slice(&[0u8; 8]);
        let err = read_frame(&mut bad.as_slice(), None).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frame_reports_unexpected_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Message::Hello { worker: 1 }, None).unwrap();
        buf.truncate(buf.len() - 1);
        let err = read_frame(&mut buf.as_slice(), None).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn unknown_tag_is_a_decode_error() {
        let payload = vec![99u8];
        let mut buf = (payload.len() as u32).to_le_bytes().to_vec();
        buf.extend_from_slice(&payload);
        let err = read_frame(&mut buf.as_slice(), None).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("unknown cluster message tag"), "{err}");
    }
}
