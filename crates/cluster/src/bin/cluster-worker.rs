//! Standalone worker binary for the cluster crate's own integration tests
//! (`env!("CARGO_BIN_EXE_cluster-worker")`); production runs use the
//! `optirec worker` subcommand, which calls the same [`cluster::worker::run`].

use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let listen = args
        .iter()
        .position(|a| a == "--listen")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:0".to_string());
    if let Err(e) = cluster::worker::run(&listen) {
        eprintln!("cluster-worker: {e}");
        exit(1);
    }
}
