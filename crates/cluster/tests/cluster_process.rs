//! Multi-process integration tests: real worker processes on loopback TCP,
//! real `SIGKILL` failure injection, recovery validated against the
//! single-process baseline.

use std::sync::Arc;
use std::time::Duration;

use cluster::{
    run_cluster, run_local, ClusterConfig, ClusterStrategy, DataPlaneMode, KillPlan, LinkPlan,
    StragglerPlan,
};
use graphs::GraphBuilder;
use telemetry::{MemorySink, SinkHandle};

/// Cluster configuration pointed at this crate's test worker binary, with
/// timings tightened for test latency.
fn test_config(workers: usize, parallelism: usize, max_iterations: u32) -> ClusterConfig {
    let mut cfg = ClusterConfig::new(workers, parallelism, max_iterations);
    cfg.worker_cmd = vec![env!("CARGO_BIN_EXE_cluster-worker").to_string()];
    cfg.heartbeat_interval = Duration::from_millis(20);
    cfg.heartbeat_timeout = Duration::from_millis(500);
    cfg.step_timeout = Duration::from_secs(10);
    cfg
}

fn cc_graph() -> graphs::Graph {
    // Three components over 24 vertices, so every one of 4 partitions holds
    // vertices of several components.
    let mut b = GraphBuilder::undirected(24);
    for v in 0..7 {
        b.add_edge(v, v + 1);
    }
    for v in 8..15 {
        b.add_edge(v, v + 1);
    }
    for v in 16..23 {
        b.add_edge(v, v + 1);
    }
    b.build()
}

fn pagerank_graph() -> graphs::Graph {
    // Strongly connected (a ring with chords): no dangling mass, non-trivial
    // rank distribution.
    let mut b = GraphBuilder::directed(20);
    for v in 0..20u64 {
        b.add_edge(v, (v + 1) % 20);
    }
    for v in (0..20u64).step_by(3) {
        b.add_edge(v, (v + 7) % 20);
    }
    b.build()
}

#[test]
fn failure_free_cluster_cc_is_bitwise_identical_to_local() {
    let graph = cc_graph();
    let local = run_local("cc", &graph, 4, 60, SinkHandle::disabled()).unwrap();
    let cluster = run_cluster("cc", &graph, test_config(2, 4, 60), SinkHandle::disabled()).unwrap();
    assert_eq!(cluster.values, local.values);
    assert_eq!(cluster.stats.supersteps(), local.stats.supersteps());
    assert!(cluster.stats.converged);
    let labels: Vec<u64> = cluster.values.iter().map(|&(_, l)| l).collect();
    assert_eq!(labels, graphs::exact_components(&graph));
}

#[test]
fn failure_free_cluster_pagerank_is_bitwise_identical_to_local() {
    let graph = pagerank_graph();
    let local = run_local("pagerank", &graph, 4, 300, SinkHandle::disabled()).unwrap();
    let cluster =
        run_cluster("pagerank", &graph, test_config(2, 4, 300), SinkHandle::disabled()).unwrap();
    // Both backends fold the same sorted message lists in the same order:
    // equality holds down to the bit pattern, not just within a tolerance.
    assert_eq!(cluster.values, local.values);
    assert!(cluster.stats.converged);
}

#[test]
fn sigkilled_worker_mid_iteration_recovers_via_compensation() {
    let graph = cc_graph();
    let sink = Arc::new(MemorySink::new());
    let telemetry = SinkHandle::new(sink.clone());

    let mut cfg = test_config(2, 4, 60);
    cfg = cfg.with_kill(KillPlan { superstep: 2, worker: 1 });
    let cluster = run_cluster("cc", &graph, cfg, telemetry).unwrap();

    // Compensation (not restart) recovered the run, and it still converged
    // to exactly the same result as the failure-free single-process run.
    let baseline = run_local("cc", &graph, 4, 60, SinkHandle::disabled()).unwrap();
    assert_eq!(cluster.values, baseline.values);
    assert!(cluster.stats.converged);
    assert!(
        cluster.stats.supersteps() > baseline.stats.supersteps(),
        "the failed superstep must be redone"
    );
    let failures: Vec<_> = cluster.stats.failures().collect();
    assert_eq!(failures.len(), 1, "exactly one injected failure");
    assert_eq!(failures[0].1.lost_partitions, vec![1, 3], "worker 1 owned partitions 1 and 3");

    let journal = sink.journal_lines();
    assert!(journal.contains("\"event\":\"WorkerLost\""), "journal:\n{journal}");
    assert!(journal.contains("\"lost_partitions\":[1,3]"), "journal:\n{journal}");
    assert!(journal.contains("\"event\":\"WorkerRejoined\""), "journal:\n{journal}");
    assert!(journal.contains("\"event\":\"CompensationInvoked\""), "journal:\n{journal}");
}

#[test]
fn sigkilled_pagerank_still_matches_the_failure_free_fixed_point() {
    let graph = pagerank_graph();
    let mut cfg = test_config(2, 4, 300);
    cfg = cfg.with_kill(KillPlan { superstep: 3, worker: 0 });
    let cluster = run_cluster("pagerank", &graph, cfg, SinkHandle::disabled()).unwrap();
    let baseline = run_local("pagerank", &graph, 4, 300, SinkHandle::disabled()).unwrap();

    // After a failure the trajectories differ, but both terminate within
    // EPSILON (1e-9) of the unique fixed point, so ranks agree to far better
    // than 1e-6.
    assert!(cluster.stats.converged);
    for (&(v, a), &(_, b)) in cluster.values.iter().zip(&baseline.values) {
        let (a, b) = (f64::from_bits(a), f64::from_bits(b));
        assert!((a - b).abs() < 1e-6, "vertex {v}: {a} vs baseline {b}");
    }
    let total: f64 = cluster.values.iter().map(|&(_, bits)| f64::from_bits(bits)).sum();
    assert!((total - 1.0).abs() < 1e-6, "compensation must preserve total rank mass, got {total}");
}

#[test]
fn async_snapshot_cluster_restores_from_the_last_complete_epoch() {
    let graph = cc_graph();
    let sink = Arc::new(MemorySink::new());
    let telemetry = SinkHandle::new(sink.clone());

    // Interval 1 with 4 partitions: epoch 0's chunks persist one per
    // superstep and complete at superstep 3. Killing during superstep 5
    // forces a restore from epoch 0 — the only complete snapshot.
    let cfg = test_config(2, 4, 60)
        .with_strategy(ClusterStrategy::AsyncSnapshot { interval: 1 })
        .with_kill(KillPlan { superstep: 5, worker: 1 });
    let cluster = run_cluster("cc", &graph, cfg, telemetry).unwrap();

    let baseline = run_local("cc", &graph, 4, 60, SinkHandle::disabled()).unwrap();
    assert_eq!(cluster.values, baseline.values, "rollback must reach the exact baseline");
    assert!(cluster.stats.converged);

    let journal = sink.journal_lines();
    assert!(journal.contains("\"event\":\"SnapshotBarrierStarted\""), "journal:\n{journal}");
    assert!(journal.contains("\"event\":\"SnapshotBarrierCompleted\""), "journal:\n{journal}");
    assert!(journal.contains("\"event\":\"ChaosInjected\""), "journal:\n{journal}");
    assert!(
        journal.contains("\"event\":\"CheckpointRestored\",\"iteration\":"),
        "a complete epoch must be the restore point, journal:\n{journal}"
    );
    assert!(journal.contains("\"event\":\"WorkerLost\""), "journal:\n{journal}");
}

#[test]
fn kill_storm_takes_out_several_workers_in_one_superstep() {
    let graph = cc_graph();
    let sink = Arc::new(MemorySink::new());
    let telemetry = SinkHandle::new(sink.clone());

    let cfg = test_config(3, 6, 60)
        .with_kill(KillPlan { superstep: 2, worker: 0 })
        .with_kill(KillPlan { superstep: 2, worker: 2 });
    let cluster = run_cluster("cc", &graph, cfg, telemetry).unwrap();

    let baseline = run_local("cc", &graph, 6, 60, SinkHandle::disabled()).unwrap();
    assert_eq!(cluster.values, baseline.values);
    assert!(cluster.stats.converged);

    let journal = sink.journal_lines();
    let chaos_kills = journal
        .lines()
        .filter(|l| l.contains("\"event\":\"ChaosInjected\"") && l.contains("\"kind\":\"kill\""))
        .count();
    assert_eq!(chaos_kills, 2, "both storm kills journaled:\n{journal}");
    assert!(journal.contains("\"event\":\"CompensationInvoked\""), "journal:\n{journal}");
}

#[test]
fn stragglers_and_degraded_links_only_slow_the_run_down() {
    let graph = cc_graph();
    let sink = Arc::new(MemorySink::new());
    let telemetry = SinkHandle::new(sink.clone());

    let mut cfg = test_config(2, 4, 60);
    cfg.chaos.stragglers.push(StragglerPlan {
        from: 1,
        to: 3,
        worker: 1,
        delay: Duration::from_millis(30),
    });
    cfg.chaos.links.push(LinkPlan {
        from: 2,
        to: 4,
        worker: 0,
        delay: Duration::from_millis(5),
        drop_probability: 0.0,
        seed: 7,
    });
    let cluster = run_cluster("cc", &graph, cfg, telemetry).unwrap();

    // Delays never corrupt state: the run is still bitwise identical to the
    // failure-free local baseline, with no recovery at all.
    let baseline = run_local("cc", &graph, 4, 60, SinkHandle::disabled()).unwrap();
    assert_eq!(cluster.values, baseline.values);
    assert_eq!(cluster.stats.supersteps(), baseline.stats.supersteps());
    assert!(cluster.stats.converged);

    let journal = sink.journal_lines();
    assert!(journal.contains("\"kind\":\"straggler\",\"param\":30"), "journal:\n{journal}");
    assert!(journal.contains("\"kind\":\"link_delay\",\"param\":5"), "journal:\n{journal}");
    assert!(!journal.contains("\"event\":\"WorkerLost\""), "no loss expected:\n{journal}");
}

#[test]
fn certain_link_drops_sever_the_connection_and_recovery_compensates() {
    let graph = cc_graph();
    let sink = Arc::new(MemorySink::new());
    let telemetry = SinkHandle::new(sink.clone());

    let mut cfg = test_config(2, 4, 60);
    cfg.chaos.links.push(LinkPlan {
        from: 2,
        to: 2,
        worker: 1,
        delay: Duration::ZERO,
        drop_probability: 1.0,
        seed: 11,
    });
    let cluster = run_cluster("cc", &graph, cfg, telemetry).unwrap();

    let baseline = run_local("cc", &graph, 4, 60, SinkHandle::disabled()).unwrap();
    assert_eq!(cluster.values, baseline.values);
    assert!(cluster.stats.converged);

    let journal = sink.journal_lines();
    assert!(journal.contains("\"kind\":\"link_drop\""), "journal:\n{journal}");
    assert!(journal.contains("\"event\":\"WorkerLost\""), "severed link is a loss:\n{journal}");
    assert!(journal.contains("\"event\":\"CompensationInvoked\""), "journal:\n{journal}");
}

#[test]
fn network_metrics_are_recorded() {
    let graph = cc_graph();
    let sink = Arc::new(MemorySink::new());
    let telemetry = SinkHandle::new(sink);

    let mut cfg = test_config(2, 4, 60);
    cfg = cfg.with_kill(KillPlan { superstep: 1, worker: 0 });
    run_cluster("cc", &graph, cfg, telemetry.clone()).unwrap();

    let metrics = telemetry.metrics();
    assert!(metrics.counter("net/bytes_out").get() > 0, "frames were sent");
    assert!(metrics.counter("net/bytes_in").get() > 0, "frames were received");
    assert_eq!(metrics.counter("net/reconnects").get(), 1, "one worker rejoined");
    assert!(
        metrics.histogram("net/heartbeat_rtt_ns").count() > 0,
        "heartbeat round-trips were measured"
    );
    // Direct mode (the default): worker-to-worker shuffle traffic is
    // accounted separately from the control plane, attributed to the
    // worker that shipped it.
    assert!(metrics.counter("net/data_bytes_out").get() > 0, "peer frames were shipped");
    let snapshot = metrics.snapshot();
    assert!(
        snapshot.histograms.keys().any(|k| k.starts_with("net/peer_bytes/p")),
        "per-worker traffic tracks exist: {:?}",
        snapshot.histograms.keys().collect::<Vec<_>>()
    );
    assert!(
        snapshot.histograms.keys().any(|k| k.starts_with("worker_exchange_ns/p")),
        "exchange waits were measured: {:?}",
        snapshot.histograms.keys().collect::<Vec<_>>()
    );
}

#[test]
fn the_coordinator_funnel_ships_no_peer_traffic() {
    let graph = cc_graph();
    let telemetry = SinkHandle::new(Arc::new(MemorySink::new()));
    let mut cfg = test_config(2, 4, 60);
    cfg = cfg.with_data_plane(DataPlaneMode::Coordinator);
    run_cluster("cc", &graph, cfg, telemetry.clone()).unwrap();

    let metrics = telemetry.metrics();
    assert!(metrics.counter("net/bytes_out").get() > 0, "the funnel still moves frames");
    assert_eq!(
        metrics.counter("net/data_bytes_out").get(),
        0,
        "funnel mode must not open a data plane"
    );
}

#[test]
fn direct_and_funneled_data_planes_agree_bitwise_when_failure_free() {
    for program in ["cc", "pagerank"] {
        let graph = if program == "cc" { cc_graph() } else { pagerank_graph() };
        let direct = run_cluster(
            program,
            &graph,
            test_config(2, 4, 300).with_data_plane(DataPlaneMode::Direct),
            SinkHandle::disabled(),
        )
        .unwrap();
        let funnel = run_cluster(
            program,
            &graph,
            test_config(2, 4, 300).with_data_plane(DataPlaneMode::Coordinator),
            SinkHandle::disabled(),
        )
        .unwrap();
        // Workers bucket and sort shuffled messages into the same canonical
        // order the funnel produced, so the data planes agree down to the
        // bit pattern — and in the same number of supersteps.
        assert_eq!(direct.values, funnel.values, "{program}: data planes diverged");
        assert_eq!(direct.stats.supersteps(), funnel.stats.supersteps(), "{program}");
        assert!(direct.stats.converged && funnel.stats.converged, "{program}");
    }
}

#[test]
fn checkpoint_cluster_rolls_back_to_the_captured_interval() {
    let graph = cc_graph();
    let sink = Arc::new(MemorySink::new());
    let telemetry = SinkHandle::new(sink.clone());

    let cfg = test_config(2, 4, 60)
        .with_strategy(ClusterStrategy::Checkpoint { interval: 1 })
        .with_kill(KillPlan { superstep: 3, worker: 1 });
    let cluster = run_cluster("cc", &graph, cfg, telemetry).unwrap();

    let baseline = run_local("cc", &graph, 4, 60, SinkHandle::disabled()).unwrap();
    assert_eq!(cluster.values, baseline.values, "rollback must reach the exact baseline");
    assert!(cluster.stats.converged);
    assert!(
        cluster.stats.supersteps() > baseline.stats.supersteps(),
        "rolled-back supersteps must be redone"
    );

    let journal = sink.journal_lines();
    assert!(journal.contains("\"event\":\"WorkerLost\""), "journal:\n{journal}");
    assert!(
        journal.contains("\"event\":\"CheckpointRestored\""),
        "the kill must restore a synchronous checkpoint, journal:\n{journal}"
    );
}

#[test]
fn restart_cluster_reruns_from_scratch_and_reaches_the_fixpoint() {
    let graph = cc_graph();
    let sink = Arc::new(MemorySink::new());
    let telemetry = SinkHandle::new(sink.clone());

    let cfg = test_config(2, 4, 60)
        .with_strategy(ClusterStrategy::Restart)
        .with_kill(KillPlan { superstep: 3, worker: 0 });
    let cluster = run_cluster("cc", &graph, cfg, telemetry).unwrap();

    let baseline = run_local("cc", &graph, 4, 60, SinkHandle::disabled()).unwrap();
    assert_eq!(cluster.values, baseline.values);
    assert!(cluster.stats.converged);
    assert!(
        cluster.stats.supersteps() >= baseline.stats.supersteps() + 3,
        "a restart repeats every superstep run before the kill, got {} vs baseline {}",
        cluster.stats.supersteps(),
        baseline.stats.supersteps()
    );
    let journal = sink.journal_lines();
    assert!(journal.contains("\"event\":\"WorkerLost\""), "journal:\n{journal}");
}

#[test]
fn frames_delivered_by_a_worker_declared_dead_do_not_double_deliver() {
    // Satellite regression for the data plane: the straggler stalls the
    // coordinator's read of worker 0's replies over supersteps 2..=4 while
    // both workers keep exchanging shuffle frames directly, and the kill
    // then takes worker 1 out at superstep 3 — after frames for in-flight
    // supersteps already landed in peer inboxes. The retry runs under a
    // fresh chronological superstep and a bumped epoch, so every frame of
    // the dead incarnation sits below the exchange floor: folding any of
    // them in twice would corrupt the labels.
    let graph = cc_graph();
    let sink = Arc::new(MemorySink::new());
    let telemetry = SinkHandle::new(sink.clone());

    let mut cfg = test_config(2, 4, 60);
    cfg.chaos.stragglers.push(StragglerPlan {
        from: 2,
        to: 4,
        worker: 0,
        delay: Duration::from_millis(60),
    });
    cfg = cfg.with_kill(KillPlan { superstep: 3, worker: 1 });
    let cluster = run_cluster("cc", &graph, cfg, telemetry).unwrap();

    let baseline = run_local("cc", &graph, 4, 60, SinkHandle::disabled()).unwrap();
    assert_eq!(cluster.values, baseline.values, "stale peer frames must not double-deliver");
    assert!(cluster.stats.converged);

    let journal = sink.journal_lines();
    assert!(journal.contains("\"kind\":\"straggler\""), "journal:\n{journal}");
    assert!(journal.contains("\"event\":\"WorkerLost\""), "journal:\n{journal}");
    assert!(journal.contains("\"event\":\"CompensationInvoked\""), "journal:\n{journal}");
}
