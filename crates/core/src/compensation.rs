//! Compensation functions: user-defined state re-initialisers.
//!
//! A compensation function is invoked once per failure, after the engine has
//! dropped the lost partitions. It must bring the *whole* partitioned state
//! back to a configuration from which the fixpoint algorithm provably
//! converges (paper §2.2): typically it rebuilds the lost partitions from
//! the (re-computable) initial input, and may adjust surviving partitions to
//! restore a global invariant (e.g. "all ranks sum to one").

use dataflow::dataset::{Data, Partitions};
use dataflow::ft::SolutionSets;
use dataflow::partition::{hash_partition, PartitionId};

/// Compensation for bulk iterations: repair the partitioned state in place.
///
/// `lost` lists the partitions that were cleared; all other partitions hold
/// their pre-failure content and may be read (and adjusted) to restore
/// global invariants.
pub trait BulkCompensation<T: Data> {
    /// Restore a consistent state.
    fn compensate(&mut self, state: &mut Partitions<T>, lost: &[PartitionId], iteration: u32);

    /// Short human-readable name, used in plan rendering and reports
    /// (e.g. `"FixRanks"`).
    fn name(&self) -> &str {
        "compensation"
    }
}

impl<T: Data, F> BulkCompensation<T> for F
where
    F: FnMut(&mut Partitions<T>, &[PartitionId], u32),
{
    fn compensate(&mut self, state: &mut Partitions<T>, lost: &[PartitionId], iteration: u32) {
        self(state, lost, iteration)
    }
}

/// Compensation for delta iterations: repair the solution sets *and* seed
/// the working set so that restored keys re-participate.
///
/// Both the solution-set partitions and the workset partitions of the lost
/// workers were cleared. The compensation must respect the hash
/// partitioning: a key `k` belongs into
/// `solution[dataflow::partition::hash_partition(&k, solution.len())]`.
pub trait DeltaCompensation<K: Data, V: Data, W: Data> {
    /// Restore a consistent solution set and re-seed the working set.
    fn compensate(
        &mut self,
        solution: &mut SolutionSets<K, V>,
        workset: &mut Partitions<W>,
        lost: &[PartitionId],
        iteration: u32,
    );

    /// Short human-readable name (e.g. `"FixComponents"`).
    fn name(&self) -> &str {
        "compensation"
    }
}

impl<K: Data, V: Data, W: Data, F> DeltaCompensation<K, V, W> for F
where
    F: FnMut(&mut SolutionSets<K, V>, &mut Partitions<W>, &[PartitionId], u32),
{
    fn compensate(
        &mut self,
        solution: &mut SolutionSets<K, V>,
        workset: &mut Partitions<W>,
        lost: &[PartitionId],
        iteration: u32,
    ) {
        self(solution, workset, lost, iteration)
    }
}

/// The dense keys `0..count` that were lost with the given partitions —
/// i.e. the keys whose hash routes them to a lost partition. Every
/// compensation function over dense-id state (vertices, matrix rows,
/// centroid ids) starts with exactly this scan; sharing it keeps the
/// partition-routing rule in one place.
pub fn lost_keys(
    count: u64,
    parallelism: usize,
    lost: &[PartitionId],
) -> impl Iterator<Item = (u64, PartitionId)> + '_ {
    let mut lost_mask = vec![false; parallelism];
    for &pid in lost {
        lost_mask[pid] = true;
    }
    (0..count).filter_map(move |key| {
        let pid = hash_partition(&key, parallelism);
        lost_mask[pid].then_some((key, pid))
    })
}

/// Wrap a compensation with an explicit display name.
pub struct Named<C> {
    inner: C,
    name: String,
}

impl<C> Named<C> {
    /// Attach `name` to `inner`.
    pub fn new(name: impl Into<String>, inner: C) -> Self {
        Named { inner, name: name.into() }
    }
}

impl<T: Data, C: BulkCompensation<T>> BulkCompensation<T> for Named<C> {
    fn compensate(&mut self, state: &mut Partitions<T>, lost: &[PartitionId], iteration: u32) {
        self.inner.compensate(state, lost, iteration)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

impl<K: Data, V: Data, W: Data, C: DeltaCompensation<K, V, W>> DeltaCompensation<K, V, W>
    for Named<C>
{
    fn compensate(
        &mut self,
        solution: &mut SolutionSets<K, V>,
        workset: &mut Partitions<W>,
        lost: &[PartitionId],
        iteration: u32,
    ) {
        self.inner.compensate(solution, workset, lost, iteration)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closures_are_bulk_compensations() {
        let mut calls = 0u32;
        {
            let mut comp = |state: &mut Partitions<u64>, lost: &[PartitionId], _iter: u32| {
                for &pid in lost {
                    state.partition_mut(pid).push(42);
                }
                calls += 1;
            };
            let mut state = Partitions::round_robin(vec![1u64, 2, 3, 4], 2);
            state.clear_partition(1);
            comp.compensate(&mut state, &[1], 3);
            assert_eq!(state.partition(1), &[42]);
        }
        assert_eq!(calls, 1);
    }

    #[test]
    fn named_wrapper_reports_its_name() {
        let comp =
            Named::new("FixRanks", |_s: &mut Partitions<f64>, _l: &[PartitionId], _i: u32| {});
        assert_eq!(BulkCompensation::<f64>::name(&comp), "FixRanks");
    }

    #[test]
    fn closures_are_delta_compensations() {
        let mut comp = |solution: &mut SolutionSets<u64, u64>,
                        workset: &mut Partitions<(u64, u64)>,
                        lost: &[PartitionId],
                        _iter: u32| {
            for &pid in lost {
                solution[pid].insert(7, 7);
                workset.partition_mut(pid).push((7, 7));
            }
        };
        let mut solution: SolutionSets<u64, u64> = vec![Default::default(), Default::default()];
        let mut workset = Partitions::empty(2);
        comp.compensate(&mut solution, &mut workset, &[0], 1);
        assert_eq!(solution[0].get(&7), Some(&7));
        assert_eq!(workset.partition(0), &[(7, 7)]);
        assert!(solution[1].is_empty());
    }

    #[test]
    fn lost_keys_selects_exactly_the_lost_partitions() {
        let parallelism = 4;
        let lost = vec![1usize, 3];
        let selected: Vec<(u64, usize)> = lost_keys(100, parallelism, &lost).collect();
        assert!(!selected.is_empty());
        for &(key, pid) in &selected {
            assert_eq!(hash_partition(&key, parallelism), pid);
            assert!(lost.contains(&pid));
        }
        let missed: Vec<u64> =
            (0..100).filter(|k| lost.contains(&hash_partition(k, parallelism))).collect();
        assert_eq!(selected.len(), missed.len());
    }

    #[test]
    fn lost_keys_of_nothing_is_empty() {
        assert_eq!(lost_keys(50, 4, &[]).count(), 0);
        assert_eq!(lost_keys(0, 4, &[0, 1, 2, 3]).count(), 0);
    }
}
