//! Failure scenarios: declarative descriptions of when workers die.
//!
//! In the demonstration, conference attendees click partitions to fail at
//! chosen iterations; here, experiments describe the same schedules as data.
//! A [`FailureScenario`] is a cheap, clonable description that every run of
//! an experiment converts into a fresh engine-level
//! [`dataflow::ft::FailureSource`].

use dataflow::ft::{DeterministicFailures, FailureSource};
use dataflow::partition::PartitionId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A declarative failure schedule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FailureScenario {
    events: Vec<(u32, Vec<PartitionId>)>,
    random: Option<RandomSpec>,
}

#[derive(Debug, Clone, PartialEq)]
struct RandomSpec {
    probability: f64,
    max_partitions: usize,
    min_superstep: u32,
    seed: u64,
}

impl Eq for RandomSpec {}

impl FailureScenario {
    /// No failures — the failure-free baseline.
    pub fn none() -> Self {
        FailureScenario::default()
    }

    /// Add a failure of `partitions` at the end of superstep `superstep`.
    pub fn fail_at(mut self, superstep: u32, partitions: &[PartitionId]) -> Self {
        self.events.push((superstep, partitions.to_vec()));
        self
    }

    /// Add seeded random failures: after `min_superstep`, each superstep
    /// independently fails with `probability`, killing between one and
    /// `max_partitions` distinct partitions (an MTBF-style model).
    pub fn random(
        mut self,
        probability: f64,
        max_partitions: usize,
        min_superstep: u32,
        seed: u64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&probability));
        assert!(max_partitions >= 1);
        self.random = Some(RandomSpec { probability, max_partitions, min_superstep, seed });
        self
    }

    /// True when the scenario schedules no failures at all.
    pub fn is_failure_free(&self) -> bool {
        self.events.is_empty() && self.random.is_none()
    }

    /// The deterministic events of the scenario.
    pub fn events(&self) -> &[(u32, Vec<PartitionId>)] {
        &self.events
    }

    /// Instantiate a fresh engine failure source for one run.
    pub fn to_source(&self) -> Box<dyn FailureSource> {
        let mut deterministic = DeterministicFailures::new();
        for (superstep, partitions) in &self.events {
            deterministic = deterministic.fail_at(*superstep, partitions);
        }
        match &self.random {
            None => Box::new(deterministic),
            Some(spec) => Box::new(Combined {
                deterministic,
                random: RandomFailures::new(
                    spec.probability,
                    spec.max_partitions,
                    spec.min_superstep,
                    spec.seed,
                ),
            }),
        }
    }

    /// Short label for reports, e.g. `"fail@3[1,2]"`.
    pub fn label(&self) -> String {
        if self.is_failure_free() {
            return "failure-free".to_string();
        }
        let mut parts: Vec<String> = self
            .events
            .iter()
            .map(|(s, p)| {
                let ids: Vec<String> = p.iter().map(|pid| pid.to_string()).collect();
                format!("fail@{s}[{}]", ids.join(","))
            })
            .collect();
        if let Some(spec) = &self.random {
            parts.push(format!("random(p={},seed={})", spec.probability, spec.seed));
        }
        parts.join("+")
    }
}

/// Seeded random failure source: an MTBF-style model where every superstep
/// past `min_superstep` fails independently with fixed probability.
#[derive(Debug, Clone)]
pub struct RandomFailures {
    rng: StdRng,
    probability: f64,
    max_partitions: usize,
    min_superstep: u32,
}

impl RandomFailures {
    /// See [`FailureScenario::random`] for the parameter meanings.
    pub fn new(probability: f64, max_partitions: usize, min_superstep: u32, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&probability));
        assert!(max_partitions >= 1);
        RandomFailures {
            rng: StdRng::seed_from_u64(seed),
            probability,
            max_partitions,
            min_superstep,
        }
    }
}

impl FailureSource for RandomFailures {
    fn poll(&mut self, superstep: u32, parallelism: usize) -> Option<Vec<PartitionId>> {
        if superstep < self.min_superstep || !self.rng.gen_bool(self.probability) {
            return None;
        }
        let count = self.rng.gen_range(1..=self.max_partitions.min(parallelism));
        let mut partitions: Vec<PartitionId> = (0..parallelism).collect();
        for i in 0..count {
            let j = self.rng.gen_range(i..parallelism);
            partitions.swap(i, j);
        }
        partitions.truncate(count);
        partitions.sort_unstable();
        Some(partitions)
    }
}

struct Combined {
    deterministic: DeterministicFailures,
    random: RandomFailures,
}

impl FailureSource for Combined {
    fn poll(&mut self, superstep: u32, parallelism: usize) -> Option<Vec<PartitionId>> {
        let mut lost = self.deterministic.poll(superstep, parallelism).unwrap_or_default();
        if let Some(random) = self.random.poll(superstep, parallelism) {
            lost.extend(random);
        }
        if lost.is_empty() {
            return None;
        }
        lost.sort_unstable();
        lost.dedup();
        Some(lost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_scenario_roundtrips() {
        let scenario = FailureScenario::none().fail_at(3, &[1, 2]).fail_at(7, &[0]);
        assert!(!scenario.is_failure_free());
        assert_eq!(scenario.label(), "fail@3[1,2]+fail@7[0]");
        let mut source = scenario.to_source();
        assert_eq!(source.poll(0, 4), None);
        assert_eq!(source.poll(3, 4), Some(vec![1, 2]));
        assert_eq!(source.poll(7, 4), Some(vec![0]));
    }

    #[test]
    fn failure_free_label() {
        assert_eq!(FailureScenario::none().label(), "failure-free");
        assert!(FailureScenario::none().is_failure_free());
    }

    #[test]
    fn scenario_sources_are_independent() {
        let scenario = FailureScenario::none().fail_at(1, &[0]);
        let mut a = scenario.to_source();
        let mut b = scenario.to_source();
        assert_eq!(a.poll(1, 2), Some(vec![0]));
        // Draining source `a` must not affect source `b`.
        assert_eq!(b.poll(1, 2), Some(vec![0]));
    }

    #[test]
    fn random_failures_are_seeded_and_in_range() {
        let collect = |seed: u64| {
            let mut source = RandomFailures::new(0.5, 2, 3, seed);
            (0..50).map(|s| source.poll(s, 4)).collect::<Vec<_>>()
        };
        let a = collect(9);
        let b = collect(9);
        assert_eq!(a, b, "same seed, same schedule");
        assert!(a.iter().take(3).all(Option::is_none), "no failures before min_superstep");
        let hits: Vec<_> = a.iter().flatten().collect();
        assert!(!hits.is_empty(), "p=0.5 over 47 supersteps must fire");
        for lost in hits {
            assert!(!lost.is_empty() && lost.len() <= 2);
            assert!(lost.iter().all(|&p| p < 4));
            let mut sorted = lost.clone();
            sorted.dedup();
            assert_eq!(&sorted, lost, "partitions are distinct and sorted");
        }
    }

    #[test]
    fn combined_scenario_merges_events() {
        let scenario = FailureScenario::none().fail_at(5, &[1]).random(1.0, 1, 0, 42);
        let mut source = scenario.to_source();
        let at5 = source.poll(5, 4).unwrap();
        assert!(at5.contains(&1));
        // Every superstep fails due to p = 1.0.
        assert!(source.poll(6, 4).is_some());
    }
}
