//! Optimistic recovery for iterative dataflows — the paper's contribution.
//!
//! In a distributed dataflow engine, the intermediate state of an iterative
//! algorithm is partitioned across workers; a worker failure destroys its
//! partitions. Classic *rollback recovery* periodically checkpoints the
//! state to stable storage and, on failure, restores the latest snapshot —
//! paying overhead on every run, failures or not.
//!
//! The optimistic alternative (Schelter et al., CIKM 2013; demonstrated in
//! Dudoladov et al., SIGMOD 2015) observes that a large class of fixpoint
//! algorithms converge to the correct solution from *many* intermediate
//! states, not just checkpointed ones. Instead of checkpointing, a
//! user-supplied **compensation function** re-initialises lost partitions to
//! a consistent state from which the algorithm keeps converging:
//!
//! * Connected Components: reset lost vertices to their initial labels and
//!   let them (and their neighbours) re-propagate.
//! * PageRank: ranks must sum to one, so uniformly redistribute the lost
//!   probability mass over the vertices of the failed partitions.
//!
//! Failure-free runs proceed with **zero** fault-tolerance overhead.
//!
//! This crate implements, on top of the `dataflow` engine's fault hooks:
//!
//! * [`compensation`] — the compensation-function traits with closure
//!   adapters.
//! * [`optimistic`] — the optimistic fault handlers for bulk and delta
//!   iterations.
//! * [`checkpoint`] — the rollback baseline: interval checkpointing into a
//!   [`checkpoint::StableStore`] (in-memory or on-disk) with a configurable
//!   stable-storage cost model.
//! * [`async_snapshot`] — the asynchronous-barrier-snapshot baseline
//!   (Chandy–Lamport / Flink style): barriers capture a consistent cut
//!   without a global pause and the stable-storage writes spread over the
//!   following supersteps; recovery restores the last *complete* epoch.
//! * [`incremental`] — an optimised rollback variant for delta iterations
//!   that logs solution-set diffs between full snapshots.
//! * [`ignore`] — the do-nothing "handler" used by the ablation study.
//! * [`scenario`] — failure schedules (deterministic and random/MTBF).
//! * [`strategy`] — experiment-facing strategy descriptors.

#![warn(missing_docs)]

pub mod async_snapshot;
pub mod checkpoint;
pub mod compensation;
pub mod ignore;
pub mod incremental;
pub mod optimistic;
pub mod scenario;
pub mod strategy;

pub use async_snapshot::{
    AsyncSnapshotBulkHandler, AsyncSnapshotDeltaHandler, BarrierEvent, BarrierProbe,
};
pub use checkpoint::{
    CheckpointBulkHandler, CheckpointDeltaHandler, CostModel, DiskStore, MemoryStore, StableStore,
};
pub use compensation::{BulkCompensation, DeltaCompensation};
pub use ignore::IgnoreHandler;
pub use incremental::IncrementalDeltaHandler;
pub use optimistic::{OptimisticBulkHandler, OptimisticDeltaHandler};
pub use scenario::{FailureScenario, RandomFailures};
pub use strategy::Strategy;
