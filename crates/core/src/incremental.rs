//! Incremental checkpointing for delta iterations — an optimisation of the
//! rollback baseline that exploits the same observation as delta iterations
//! themselves: late in a run, only a small fraction of the solution set
//! changes per superstep.
//!
//! Instead of a full snapshot every superstep, the handler writes a full
//! *base* snapshot every `full_interval` supersteps and, in between, only
//! the *diff* of the solution set since the previous superstep (plus the
//! current working set, which is small exactly when the diffs are small).
//! On failure it restores the base and replays the logged diffs.
//!
//! This narrows — but does not close — the failure-free gap to optimistic
//! recovery: the bytes written per superstep shrink as the algorithm
//! converges, yet every superstep still pays a stable-storage round trip.
//! The `incremental_vs_full` rows of the recovery-comparison experiment
//! quantify this.

use std::marker::PhantomData;
use std::time::Instant;

use dataflow::codec::Codec;
use dataflow::dataset::{Data, Partitions};
use dataflow::error::{EngineError, Result};
use dataflow::ft::{CheckpointCost, DeltaFaultHandler, DeltaRecoveryAction, SolutionSets};
use dataflow::partition::PartitionId;
use telemetry::{JournalEvent, SinkHandle};

use crate::checkpoint::{
    decode_solution_sets, decode_workset, encode_solution_sets, encode_workset, StableStore,
};

/// Incremental rollback recovery for delta iterations.
pub struct IncrementalDeltaHandler<K, V, W, S> {
    store: S,
    full_interval: u32,
    /// Iteration and key of the latest full snapshot.
    base: Option<(u32, String)>,
    /// Keys of the diff logs written since the base, in replay order.
    diff_chain: Vec<String>,
    /// Shadow copy of the solution set as of the last checkpointed
    /// superstep, used to compute diffs locally (local memory is cheap; the
    /// modelled cost is stable-storage traffic).
    shadow: SolutionSets<K, V>,
    sequence: u64,
    telemetry: SinkHandle,
    _records: PhantomData<fn(K, V, W)>,
}

impl<K, V, W, S: StableStore> IncrementalDeltaHandler<K, V, W, S> {
    /// Handler writing full snapshots every `full_interval` supersteps and
    /// diffs in between.
    ///
    /// # Panics
    /// Panics when `full_interval` is zero.
    pub fn new(store: S, full_interval: u32) -> Self {
        assert!(full_interval > 0, "full-snapshot interval must be at least 1");
        IncrementalDeltaHandler {
            store,
            full_interval,
            base: None,
            diff_chain: Vec::new(),
            shadow: Vec::new(),
            sequence: 0,
            telemetry: SinkHandle::disabled(),
            _records: PhantomData,
        }
    }

    /// Report restores and diff-chain replays to the given telemetry sink.
    pub fn with_telemetry(mut self, telemetry: SinkHandle) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Borrow the underlying store (byte accounting).
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Number of diff logs currently chained onto the base snapshot.
    pub fn chain_length(&self) -> usize {
        self.diff_chain.len()
    }
}

impl<K, V, W, S> DeltaFaultHandler<K, V, W> for IncrementalDeltaHandler<K, V, W, S>
where
    K: Data + Codec + std::hash::Hash + Eq,
    V: Data + Codec + PartialEq,
    W: Data + Codec,
    S: StableStore,
{
    fn after_superstep(
        &mut self,
        iteration: u32,
        solution: &SolutionSets<K, V>,
        workset: &Partitions<W>,
    ) -> Result<Option<CheckpointCost>> {
        let start = Instant::now();
        self.sequence += 1;
        let take_full = self.base.is_none() || iteration.is_multiple_of(self.full_interval);
        let mut bytes = Vec::new();
        if take_full {
            // Full base snapshot: solution + workset.
            encode_solution_sets(solution, &mut bytes);
            encode_workset(workset, &mut bytes);
            let key = format!("base-{iteration}-{}", self.sequence);
            self.store.put(&key, &bytes)?;
            // Drop the superseded chain from stable storage.
            if let Some((_, old_base)) = self.base.replace((iteration, key)) {
                self.store.remove(&old_base)?;
            }
            for old_diff in self.diff_chain.drain(..) {
                self.store.remove(&old_diff)?;
            }
        } else {
            // Diff since the shadow: upserts per partition + the workset.
            let upserts: Vec<Vec<(K, V)>> = solution
                .iter()
                .enumerate()
                .map(|(pid, set)| {
                    let shadow = self.shadow.get(pid);
                    set.iter()
                        .filter(|(k, v)| shadow.and_then(|s| s.get(k)) != Some(v))
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect()
                })
                .collect();
            (upserts.len() as u64).encode(&mut bytes);
            for part in &upserts {
                part.encode(&mut bytes);
            }
            encode_workset(workset, &mut bytes);
            let key = format!("diff-{iteration}-{}", self.sequence);
            self.store.put(&key, &bytes)?;
            self.diff_chain.push(key);
        }
        self.shadow = solution.clone();
        Ok(Some(CheckpointCost { bytes: bytes.len() as u64, duration: start.elapsed() }))
    }

    fn on_failure(
        &mut self,
        _iteration: u32,
        _lost: &[PartitionId],
        _solution: &mut SolutionSets<K, V>,
        _workset: &mut Partitions<W>,
    ) -> Result<DeltaRecoveryAction<K, V, W>> {
        let (base_iteration, base_key) = match &self.base {
            None => return Ok(DeltaRecoveryAction::Restart),
            Some(base) => base.clone(),
        };
        let blob = self.store.get(&base_key)?.ok_or_else(|| {
            EngineError::Recovery(format!("base snapshot {base_key} vanished from stable storage"))
        })?;
        let mut input = blob.as_slice();
        let mut solution = decode_solution_sets::<K, V>(&mut input)?;
        let mut workset = decode_workset::<W>(&mut input)?;
        let mut iteration = base_iteration;

        // Replay the diff chain on top of the base.
        for diff_key in &self.diff_chain {
            let blob = self.store.get(diff_key)?.ok_or_else(|| {
                EngineError::Recovery(format!("diff log {diff_key} vanished from stable storage"))
            })?;
            let mut input = blob.as_slice();
            let num_parts = u64::decode(&mut input)? as usize;
            if num_parts != solution.len() {
                return Err(EngineError::Recovery(format!(
                    "diff log {diff_key} has {num_parts} partitions, snapshot has {}",
                    solution.len()
                )));
            }
            for set in solution.iter_mut() {
                let upserts = Vec::<(K, V)>::decode(&mut input)?;
                set.extend(upserts);
            }
            workset = decode_workset::<W>(&mut input)?;
            iteration += 1;
        }
        self.telemetry.emit(|| JournalEvent::CheckpointRestored { iteration: base_iteration });
        if !self.diff_chain.is_empty() {
            self.telemetry.emit(|| JournalEvent::DiffChainReplayed {
                base_iteration,
                diffs: self.diff_chain.len() as u32,
            });
        }
        // The restored state is exactly the latest checkpointed superstep.
        Ok(DeltaRecoveryAction::Restored { iteration, solution, workset })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::MemoryStore;
    use dataflow::hash::FxHashMap;

    type Handler = IncrementalDeltaHandler<u64, u64, (u64, u64), MemoryStore>;

    fn solution_of(entries: &[(usize, u64, u64)], parallelism: usize) -> SolutionSets<u64, u64> {
        let mut sets: SolutionSets<u64, u64> = vec![FxHashMap::default(); parallelism];
        for &(pid, k, v) in entries {
            sets[pid].insert(k, v);
        }
        sets
    }

    #[test]
    fn diffs_are_smaller_than_full_snapshots() {
        let mut handler: Handler = IncrementalDeltaHandler::new(MemoryStore::new(), 100);
        let mut entries: Vec<(usize, u64, u64)> =
            (0..200).map(|k| ((k % 2) as usize, k, k)).collect();
        let workset = Partitions::from_parts(vec![vec![(0u64, 0u64)], vec![]]);

        let full =
            handler.after_superstep(0, &solution_of(&entries, 2), &workset).unwrap().unwrap();
        // One entry changes: the diff must be far smaller than the base.
        entries[7].2 = 999;
        let diff =
            handler.after_superstep(1, &solution_of(&entries, 2), &workset).unwrap().unwrap();
        assert!(diff.bytes * 10 < full.bytes, "diff {} vs full {}", diff.bytes, full.bytes);
        assert_eq!(handler.chain_length(), 1);
    }

    #[test]
    fn replay_restores_the_latest_state() {
        let mut handler: Handler = IncrementalDeltaHandler::new(MemoryStore::new(), 100);
        let mut entries: Vec<(usize, u64, u64)> = (0..10).map(|k| (0usize, k, k)).collect();
        let ws0 = Partitions::from_parts(vec![vec![(1u64, 1u64)], vec![]]);
        handler.after_superstep(0, &solution_of(&entries, 2), &ws0).unwrap();

        entries[3].2 = 42;
        let ws1 = Partitions::from_parts(vec![vec![], vec![(2u64, 2u64)]]);
        handler.after_superstep(1, &solution_of(&entries, 2), &ws1).unwrap();

        entries.push((1usize, 77, 78)); // new key appears in partition 1
        let ws2 = Partitions::from_parts(vec![vec![(3u64, 3u64)], vec![]]);
        handler.after_superstep(2, &solution_of(&entries, 2), &ws2).unwrap();

        let mut broken_solution: SolutionSets<u64, u64> = vec![FxHashMap::default(); 2];
        let mut broken_ws: Partitions<(u64, u64)> = Partitions::empty(2);
        match handler.on_failure(3, &[0], &mut broken_solution, &mut broken_ws).unwrap() {
            DeltaRecoveryAction::Restored { iteration, solution, workset } => {
                assert_eq!(iteration, 2);
                assert_eq!(solution[0].get(&3), Some(&42));
                assert_eq!(solution[1].get(&77), Some(&78));
                assert_eq!(solution[0].len(), 10);
                assert_eq!(workset.partition(0), &[(3, 3)]);
            }
            _ => panic!("expected restore"),
        }
    }

    #[test]
    fn full_interval_resets_the_chain() {
        let mut handler: Handler = IncrementalDeltaHandler::new(MemoryStore::new(), 2);
        let entries: Vec<(usize, u64, u64)> = (0..5).map(|k| (0usize, k, k)).collect();
        let ws = Partitions::from_parts(vec![vec![], vec![]]);
        let solution = solution_of(&entries, 2);
        handler.after_superstep(0, &solution, &ws).unwrap(); // full (0 % 2 == 0)
        handler.after_superstep(1, &solution, &ws).unwrap(); // diff
        assert_eq!(handler.chain_length(), 1);
        handler.after_superstep(2, &solution, &ws).unwrap(); // full again
        assert_eq!(handler.chain_length(), 0);
        // Stable storage holds only the latest base.
        assert_eq!(handler.store().len(), 1);
    }

    #[test]
    fn restart_before_first_snapshot() {
        let mut handler: Handler = IncrementalDeltaHandler::new(MemoryStore::new(), 3);
        let mut solution: SolutionSets<u64, u64> = vec![FxHashMap::default()];
        let mut ws: Partitions<(u64, u64)> = Partitions::empty(1);
        match handler.on_failure(0, &[0], &mut solution, &mut ws).unwrap() {
            DeltaRecoveryAction::Restart => {}
            _ => panic!("expected restart"),
        }
    }

    #[test]
    fn unchanged_state_produces_empty_diffs() {
        let mut handler: Handler = IncrementalDeltaHandler::new(MemoryStore::new(), 100);
        let entries: Vec<(usize, u64, u64)> = (0..50).map(|k| (0usize, k, k)).collect();
        let ws: Partitions<(u64, u64)> = Partitions::empty(2);
        let solution = solution_of(&entries, 2);
        let full = handler.after_superstep(0, &solution, &ws).unwrap().unwrap();
        let diff = handler.after_superstep(1, &solution, &ws).unwrap().unwrap();
        assert!(diff.bytes < full.bytes / 10, "empty diff must be tiny ({})", diff.bytes);
    }
}
