//! Experiment-facing recovery-strategy descriptors.
//!
//! Handlers are typed against the algorithm's record types and carry the
//! algorithm's compensation function; experiments instead describe *which*
//! strategy to run as plain data, and each algorithm translates the
//! description into concrete handlers (see `algos::*::run`).

/// Which fault-tolerance strategy an experiment run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Optimistic recovery (the paper's mechanism): no checkpoints; on
    /// failure the algorithm's compensation function restores a consistent
    /// state. Optimal failure-free performance.
    Optimistic,
    /// Rollback recovery: checkpoint the iteration state every `interval`
    /// iterations, restore the latest snapshot on failure.
    Checkpoint {
        /// Iterations between snapshots.
        interval: u32,
    },
    /// Incremental rollback recovery (delta iterations only): a full
    /// snapshot every `full_interval` iterations, solution-set diffs in
    /// between, replayed on failure.
    IncrementalCheckpoint {
        /// Iterations between full snapshots.
        full_interval: u32,
    },
    /// Asynchronous barrier snapshots (Chandy–Lamport style, the mechanism
    /// behind Flink's checkpoints): a barrier every `interval` iterations
    /// captures a consistent cut without a global pause — the stable-storage
    /// writes are spread over the following supersteps while computation
    /// keeps running. Recovery restores the last *complete* snapshot.
    AsyncSnapshot {
        /// Iterations between barrier injections.
        interval: u32,
    },
    /// Restart from scratch on failure — what lineage-based recovery
    /// degenerates to for iterative jobs (paper §2.2). Zero failure-free
    /// overhead, maximal recovery cost.
    Restart,
    /// Ablation: leave lost partitions empty. Converges to *wrong* results;
    /// included to demonstrate why compensation functions are needed.
    Ignore,
}

impl Strategy {
    /// Stable label for reports and CSV columns.
    pub fn label(&self) -> String {
        match self {
            Strategy::Optimistic => "optimistic".to_string(),
            Strategy::Checkpoint { interval } => format!("checkpoint({interval})"),
            Strategy::IncrementalCheckpoint { full_interval } => {
                format!("incremental({full_interval})")
            }
            Strategy::AsyncSnapshot { interval } => format!("async-snapshot({interval})"),
            Strategy::Restart => "restart".to_string(),
            Strategy::Ignore => "ignore".to_string(),
        }
    }

    /// Whether the strategy guarantees convergence to the correct result.
    pub fn is_correct(&self) -> bool {
        !matches!(self, Strategy::Ignore)
    }

    /// Whether the strategy adds failure-free overhead.
    pub fn has_failure_free_overhead(&self) -> bool {
        matches!(
            self,
            Strategy::Checkpoint { .. }
                | Strategy::IncrementalCheckpoint { .. }
                | Strategy::AsyncSnapshot { .. }
        )
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(Strategy::Optimistic.label(), "optimistic");
        assert_eq!(Strategy::Checkpoint { interval: 3 }.label(), "checkpoint(3)");
        assert_eq!(Strategy::Restart.label(), "restart");
        assert_eq!(Strategy::IncrementalCheckpoint { full_interval: 4 }.label(), "incremental(4)");
        assert_eq!(Strategy::AsyncSnapshot { interval: 2 }.label(), "async-snapshot(2)");
        assert_eq!(Strategy::Ignore.to_string(), "ignore");
    }

    #[test]
    fn properties() {
        assert!(Strategy::Optimistic.is_correct());
        assert!(!Strategy::Ignore.is_correct());
        assert!(Strategy::Checkpoint { interval: 1 }.has_failure_free_overhead());
        assert!(Strategy::IncrementalCheckpoint { full_interval: 9 }.has_failure_free_overhead());
        assert!(Strategy::IncrementalCheckpoint { full_interval: 9 }.is_correct());
        assert!(Strategy::AsyncSnapshot { interval: 2 }.has_failure_free_overhead());
        assert!(Strategy::AsyncSnapshot { interval: 2 }.is_correct());
        assert!(!Strategy::Optimistic.has_failure_free_overhead());
        assert!(!Strategy::Restart.has_failure_free_overhead());
    }
}
