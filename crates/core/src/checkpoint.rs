//! Rollback recovery: interval checkpointing into stable storage.
//!
//! This is the pessimistic baseline the paper argues against (§2.2): every
//! `interval` iterations the full iteration state is serialised and written
//! to a [`StableStore`]; on failure the latest snapshot is restored and the
//! iterations since then are re-executed. The overhead is paid on *every*
//! run, failure or not — the quantity Experiment C1 measures.

use std::collections::HashMap;
use std::marker::PhantomData;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use dataflow::codec::Codec;
use dataflow::dataset::{Data, Partitions};
use dataflow::error::{EngineError, Result};
use dataflow::ft::{
    BulkFaultHandler, BulkRecoveryAction, CheckpointCost, DeltaFaultHandler, DeltaRecoveryAction,
    SolutionSets,
};
use dataflow::hash::FxHashMap;
use dataflow::partition::PartitionId;
use telemetry::{JournalEvent, SinkHandle};

/// Latency/throughput model of the stable storage behind a checkpoint store.
///
/// Local laptop memory is orders of magnitude faster than the replicated
/// distributed file systems real deployments checkpoint into; the model
/// injects a sleep so measured run times reproduce the *shape* of
/// checkpointing overhead. The default is [`CostModel::instant`] (no
/// sleeping) so unit tests stay fast.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Fixed per-write latency (round trips, replication pipeline setup).
    pub base: Duration,
    /// Transfer time per byte written.
    pub nanos_per_byte: f64,
}

impl CostModel {
    /// No modelled cost (pure in-memory behaviour).
    pub fn instant() -> Self {
        CostModel { base: Duration::ZERO, nanos_per_byte: 0.0 }
    }

    /// Model from a base latency and sustained throughput.
    pub fn throughput(base: Duration, bytes_per_sec: u64) -> Self {
        assert!(bytes_per_sec > 0, "throughput must be positive");
        CostModel { base, nanos_per_byte: 1.0e9 / bytes_per_sec as f64 }
    }

    /// A replicated distributed file system: 2 ms setup, 100 MB/s sustained.
    pub fn distributed_fs() -> Self {
        CostModel::throughput(Duration::from_millis(2), 100 * 1024 * 1024)
    }

    /// The modelled delay for writing `bytes`.
    pub fn delay_for(&self, bytes: u64) -> Duration {
        if self.base.is_zero() && self.nanos_per_byte == 0.0 {
            return Duration::ZERO;
        }
        self.base + Duration::from_nanos((bytes as f64 * self.nanos_per_byte) as u64)
    }

    /// Sleep for the modelled delay and return it.
    pub fn simulate(&self, bytes: u64) -> Duration {
        let delay = self.delay_for(bytes);
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        delay
    }
}

/// Key-value blob storage for checkpoints.
pub trait StableStore {
    /// Persist `bytes` under `key`, replacing any previous value.
    fn put(&mut self, key: &str, bytes: &[u8]) -> Result<()>;

    /// Fetch the value stored under `key`.
    fn get(&self, key: &str) -> Result<Option<Vec<u8>>>;

    /// Remove the value stored under `key` (idempotent).
    fn remove(&mut self, key: &str) -> Result<()>;

    /// Total bytes written over the store's lifetime.
    fn bytes_written(&self) -> u64;
}

/// In-memory store with a stable-storage cost model.
#[derive(Debug, Default)]
pub struct MemoryStore {
    blobs: HashMap<String, Vec<u8>>,
    model: Option<CostModel>,
    bytes_written: u64,
}

impl MemoryStore {
    /// Store without modelled latency.
    pub fn new() -> Self {
        MemoryStore::default()
    }

    /// Store sleeping per the given model on every write.
    pub fn with_cost_model(model: CostModel) -> Self {
        MemoryStore { model: Some(model), ..Default::default() }
    }

    /// Number of blobs currently held.
    pub fn len(&self) -> usize {
        self.blobs.len()
    }

    /// True when the store holds nothing.
    pub fn is_empty(&self) -> bool {
        self.blobs.is_empty()
    }
}

impl StableStore for MemoryStore {
    fn put(&mut self, key: &str, bytes: &[u8]) -> Result<()> {
        if let Some(model) = &self.model {
            model.simulate(bytes.len() as u64);
        }
        self.bytes_written += bytes.len() as u64;
        self.blobs.insert(key.to_string(), bytes.to_vec());
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Option<Vec<u8>>> {
        Ok(self.blobs.get(key).cloned())
    }

    fn remove(&mut self, key: &str) -> Result<()> {
        self.blobs.remove(key);
        Ok(())
    }

    fn bytes_written(&self) -> u64 {
        self.bytes_written
    }
}

/// On-disk store: one file per key under a directory. Real I/O, plus an
/// optional extra cost model on top.
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
    model: Option<CostModel>,
    bytes_written: u64,
    cleanup_on_drop: bool,
}

impl DiskStore {
    /// Store under `dir` (created if missing).
    pub fn new(dir: impl AsRef<Path>) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        Ok(DiskStore { dir, model: None, bytes_written: 0, cleanup_on_drop: false })
    }

    /// Store under a fresh directory inside the system temp dir.
    pub fn temp() -> Result<Self> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let unique = format!(
            "optirec-ckpt-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        );
        let mut store = DiskStore::new(std::env::temp_dir().join(unique))?;
        store.cleanup_on_drop = true;
        Ok(store)
    }

    /// Add a cost model on top of the real file I/O.
    pub fn with_cost_model(mut self, model: CostModel) -> Self {
        self.model = Some(model);
        self
    }

    /// The backing directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, key: &str) -> PathBuf {
        let sanitized: String = key
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '-' { c } else { '_' })
            .collect();
        self.dir.join(format!("{sanitized}.ckpt"))
    }
}

impl Drop for DiskStore {
    fn drop(&mut self) {
        if self.cleanup_on_drop {
            std::fs::remove_dir_all(&self.dir).ok();
        }
    }
}

impl StableStore for DiskStore {
    fn put(&mut self, key: &str, bytes: &[u8]) -> Result<()> {
        if let Some(model) = &self.model {
            model.simulate(bytes.len() as u64);
        }
        self.bytes_written += bytes.len() as u64;
        std::fs::write(self.path_for(key), bytes)?;
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Option<Vec<u8>>> {
        match std::fs::read(self.path_for(key)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn remove(&mut self, key: &str) -> Result<()> {
        match std::fs::remove_file(self.path_for(key)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    fn bytes_written(&self) -> u64 {
        self.bytes_written
    }
}

/// Encode per-partition solution sets as `Vec<Vec<(K, V)>>` (deterministic
/// container layout shared by the full and incremental delta handlers).
pub(crate) fn encode_solution_sets<K, V>(solution: &SolutionSets<K, V>, out: &mut Vec<u8>)
where
    K: Data + Codec,
    V: Data + Codec,
{
    (solution.len() as u64).encode(out);
    for set in solution {
        let entries: Vec<(K, V)> = set.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        entries.encode(out);
    }
}

/// Decode solution sets written by [`encode_solution_sets`].
pub(crate) fn decode_solution_sets<K, V>(input: &mut &[u8]) -> Result<SolutionSets<K, V>>
where
    K: Data + Codec + std::hash::Hash + Eq,
    V: Data + Codec,
{
    let num_sets = u64::decode(input)? as usize;
    let mut solution: SolutionSets<K, V> = Vec::with_capacity(num_sets);
    for _ in 0..num_sets {
        let entries = Vec::<(K, V)>::decode(input)?;
        let mut set = FxHashMap::default();
        set.extend(entries);
        solution.push(set);
    }
    Ok(solution)
}

/// Encode a partitioned working set (partition-count prefix + per-partition
/// vectors).
pub(crate) fn encode_workset<W: Codec>(workset: &Partitions<W>, out: &mut Vec<u8>) {
    (workset.num_partitions() as u64).encode(out);
    for part in workset.as_parts() {
        part.encode(out);
    }
}

/// Decode a working set written by [`encode_workset`].
pub(crate) fn decode_workset<W: Codec>(input: &mut &[u8]) -> Result<Partitions<W>> {
    let num_parts = u64::decode(input)? as usize;
    let mut parts = Vec::with_capacity(num_parts);
    for _ in 0..num_parts {
        parts.push(Vec::<W>::decode(input)?);
    }
    Ok(Partitions::from_parts(parts))
}

fn encode_nested<T: Codec>(parts: &[Vec<T>]) -> Vec<u8> {
    let mut out = Vec::new();
    (parts.len() as u64).encode(&mut out);
    for part in parts {
        part.encode(&mut out);
    }
    out
}

fn decode_nested<T: Codec>(bytes: &[u8]) -> Result<Vec<Vec<T>>> {
    dataflow::codec::decode_exact::<Vec<Vec<T>>>(bytes)
}

/// Rollback-recovery handler for bulk iterations: checkpoint the state
/// every `interval` iterations, restore the latest snapshot on failure.
pub struct CheckpointBulkHandler<T, S> {
    store: S,
    interval: u32,
    latest: Option<(u32, String)>,
    telemetry: SinkHandle,
    _records: PhantomData<fn(T)>,
}

impl<T, S: StableStore> CheckpointBulkHandler<T, S> {
    /// Checkpoint into `store` at iterations `0, interval, 2·interval, ...`.
    ///
    /// # Panics
    /// Panics when `interval` is zero.
    pub fn new(store: S, interval: u32) -> Self {
        assert!(interval > 0, "checkpoint interval must be at least 1");
        CheckpointBulkHandler {
            store,
            interval,
            latest: None,
            telemetry: SinkHandle::disabled(),
            _records: PhantomData,
        }
    }

    /// Report checkpoint restores to the given telemetry sink.
    pub fn with_telemetry(mut self, telemetry: SinkHandle) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The iteration of the most recent snapshot, if any.
    pub fn latest_checkpoint(&self) -> Option<u32> {
        self.latest.as_ref().map(|(iteration, _)| *iteration)
    }

    /// Borrow the underlying store (e.g. for byte accounting).
    pub fn store(&self) -> &S {
        &self.store
    }
}

impl<T: Data + Codec, S: StableStore> BulkFaultHandler<T> for CheckpointBulkHandler<T, S> {
    fn after_superstep(
        &mut self,
        iteration: u32,
        state: &Partitions<T>,
    ) -> Result<Option<CheckpointCost>> {
        if !iteration.is_multiple_of(self.interval) {
            return Ok(None);
        }
        let start = Instant::now();
        let bytes = encode_nested(state.as_parts());
        let size = bytes.len() as u64;
        let key = format!("bulk-{iteration}");
        self.store.put(&key, &bytes)?;
        if let Some((_, old_key)) = self.latest.replace((iteration, key)) {
            self.store.remove(&old_key)?;
        }
        Ok(Some(CheckpointCost { bytes: size, duration: start.elapsed() }))
    }

    fn on_failure(
        &mut self,
        _iteration: u32,
        _lost: &[PartitionId],
        _state: &mut Partitions<T>,
    ) -> Result<BulkRecoveryAction<T>> {
        match &self.latest {
            None => Ok(BulkRecoveryAction::Restart),
            Some((iteration, key)) => {
                let bytes = self.store.get(key)?.ok_or_else(|| {
                    EngineError::Recovery(format!("checkpoint {key} vanished from stable storage"))
                })?;
                let parts = decode_nested::<T>(&bytes)?;
                let iteration = *iteration;
                self.telemetry.emit(|| JournalEvent::CheckpointRestored { iteration });
                Ok(BulkRecoveryAction::Restored { iteration, state: Partitions::from_parts(parts) })
            }
        }
    }
}

/// Rollback-recovery handler for delta iterations: snapshots both the
/// solution sets and the working set.
pub struct CheckpointDeltaHandler<K, V, W, S> {
    store: S,
    interval: u32,
    latest: Option<(u32, String)>,
    telemetry: SinkHandle,
    _records: PhantomData<fn(K, V, W)>,
}

impl<K, V, W, S: StableStore> CheckpointDeltaHandler<K, V, W, S> {
    /// Checkpoint into `store` at iterations `0, interval, 2·interval, ...`.
    ///
    /// # Panics
    /// Panics when `interval` is zero.
    pub fn new(store: S, interval: u32) -> Self {
        assert!(interval > 0, "checkpoint interval must be at least 1");
        CheckpointDeltaHandler {
            store,
            interval,
            latest: None,
            telemetry: SinkHandle::disabled(),
            _records: PhantomData,
        }
    }

    /// Report checkpoint restores to the given telemetry sink.
    pub fn with_telemetry(mut self, telemetry: SinkHandle) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The iteration of the most recent snapshot, if any.
    pub fn latest_checkpoint(&self) -> Option<u32> {
        self.latest.as_ref().map(|(iteration, _)| *iteration)
    }

    /// Borrow the underlying store.
    pub fn store(&self) -> &S {
        &self.store
    }
}

impl<K, V, W, S> DeltaFaultHandler<K, V, W> for CheckpointDeltaHandler<K, V, W, S>
where
    K: Data + Codec + std::hash::Hash + Eq,
    V: Data + Codec,
    W: Data + Codec,
    S: StableStore,
{
    fn after_superstep(
        &mut self,
        iteration: u32,
        solution: &SolutionSets<K, V>,
        workset: &Partitions<W>,
    ) -> Result<Option<CheckpointCost>> {
        if !iteration.is_multiple_of(self.interval) {
            return Ok(None);
        }
        let start = Instant::now();
        let mut bytes = Vec::new();
        encode_solution_sets(solution, &mut bytes);
        encode_workset(workset, &mut bytes);
        let size = bytes.len() as u64;
        let key = format!("delta-{iteration}");
        self.store.put(&key, &bytes)?;
        if let Some((_, old_key)) = self.latest.replace((iteration, key)) {
            self.store.remove(&old_key)?;
        }
        Ok(Some(CheckpointCost { bytes: size, duration: start.elapsed() }))
    }

    fn on_failure(
        &mut self,
        _iteration: u32,
        _lost: &[PartitionId],
        _solution: &mut SolutionSets<K, V>,
        _workset: &mut Partitions<W>,
    ) -> Result<DeltaRecoveryAction<K, V, W>> {
        let (iteration, key) = match &self.latest {
            None => return Ok(DeltaRecoveryAction::Restart),
            Some(latest) => latest,
        };
        let blob = self.store.get(key)?.ok_or_else(|| {
            EngineError::Recovery(format!("checkpoint {key} vanished from stable storage"))
        })?;
        let mut input = blob.as_slice();
        let solution = decode_solution_sets::<K, V>(&mut input)?;
        let workset = decode_workset::<W>(&mut input)?;
        if !input.is_empty() {
            return Err(EngineError::Codec("trailing bytes in delta checkpoint".into()));
        }
        let iteration = *iteration;
        self.telemetry.emit(|| JournalEvent::CheckpointRestored { iteration });
        Ok(DeltaRecoveryAction::Restored { iteration, solution, workset })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_model_delay_scales_with_bytes() {
        let model = CostModel::throughput(Duration::from_millis(1), 1_000_000);
        assert_eq!(model.delay_for(0), Duration::from_millis(1));
        assert_eq!(model.delay_for(1_000_000), Duration::from_millis(1001));
        assert_eq!(CostModel::instant().delay_for(u64::MAX), Duration::ZERO);
    }

    #[test]
    fn memory_store_roundtrip_and_accounting() {
        let mut store = MemoryStore::new();
        store.put("a", &[1, 2, 3]).unwrap();
        store.put("b", &[4]).unwrap();
        assert_eq!(store.get("a").unwrap(), Some(vec![1, 2, 3]));
        assert_eq!(store.get("missing").unwrap(), None);
        assert_eq!(store.bytes_written(), 4);
        store.remove("a").unwrap();
        assert_eq!(store.get("a").unwrap(), None);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn disk_store_roundtrip() {
        let mut store = DiskStore::temp().unwrap();
        store.put("bulk-3", b"snapshot").unwrap();
        assert_eq!(store.get("bulk-3").unwrap(), Some(b"snapshot".to_vec()));
        assert_eq!(store.get("bulk-4").unwrap(), None);
        store.remove("bulk-3").unwrap();
        assert_eq!(store.get("bulk-3").unwrap(), None);
        store.remove("bulk-3").unwrap(); // idempotent
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn disk_store_sanitizes_keys() {
        let mut store = DiskStore::temp().unwrap();
        store.put("../evil/../../key", b"x").unwrap();
        // The file must live inside the store directory.
        let entries: Vec<_> = std::fs::read_dir(store.dir()).unwrap().collect();
        assert_eq!(entries.len(), 1);
        assert_eq!(store.get("../evil/../../key").unwrap(), Some(b"x".to_vec()));
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn bulk_handler_checkpoints_on_interval_and_restores() {
        let mut handler: CheckpointBulkHandler<u64, _> =
            CheckpointBulkHandler::new(MemoryStore::new(), 2);
        let state0 = Partitions::round_robin(vec![1u64, 2, 3, 4], 2);
        // Iteration 0: checkpointed. Iteration 1: skipped. Iteration 2: checkpointed.
        assert!(handler.after_superstep(0, &state0).unwrap().is_some());
        assert!(handler.after_superstep(1, &state0).unwrap().is_none());
        let state2 = Partitions::round_robin(vec![10u64, 20, 30, 40], 2);
        let cost = handler.after_superstep(2, &state2).unwrap().unwrap();
        assert!(cost.bytes > 0);
        assert_eq!(handler.latest_checkpoint(), Some(2));

        let mut broken = state2.clone();
        broken.clear_partition(0);
        match handler.on_failure(3, &[0], &mut broken).unwrap() {
            BulkRecoveryAction::Restored { iteration, state } => {
                assert_eq!(iteration, 2);
                assert_eq!(state, state2);
            }
            _ => panic!("expected a rollback"),
        }
    }

    #[test]
    fn bulk_handler_restarts_before_first_checkpoint() {
        let mut handler: CheckpointBulkHandler<u64, _> =
            CheckpointBulkHandler::new(MemoryStore::new(), 5);
        let mut state = Partitions::round_robin(vec![1u64], 1);
        match handler.on_failure(0, &[0], &mut state).unwrap() {
            BulkRecoveryAction::Restart => {}
            _ => panic!("no checkpoint yet: must restart"),
        }
    }

    #[test]
    fn old_checkpoints_are_garbage_collected() {
        let mut handler: CheckpointBulkHandler<u64, _> =
            CheckpointBulkHandler::new(MemoryStore::new(), 1);
        let state = Partitions::round_robin(vec![1u64, 2], 2);
        for iteration in 0..5 {
            handler.after_superstep(iteration, &state).unwrap();
        }
        assert_eq!(handler.store().len(), 1, "only the latest snapshot is kept");
    }

    #[test]
    fn delta_handler_roundtrips_solution_and_workset() {
        let mut handler: CheckpointDeltaHandler<u64, u64, (u64, u64), _> =
            CheckpointDeltaHandler::new(MemoryStore::new(), 1);
        let mut solution: SolutionSets<u64, u64> = vec![Default::default(); 2];
        solution[0].insert(2, 20);
        solution[1].insert(1, 10);
        let workset = Partitions::from_parts(vec![vec![(2u64, 20u64)], vec![]]);
        let cost = handler.after_superstep(4, &solution, &workset).unwrap().unwrap();
        assert!(cost.bytes > 0);

        let mut broken_solution: SolutionSets<u64, u64> = vec![Default::default(); 2];
        let mut broken_workset = Partitions::empty(2);
        match handler.on_failure(5, &[0], &mut broken_solution, &mut broken_workset).unwrap() {
            DeltaRecoveryAction::Restored { iteration, solution: s, workset: w } => {
                assert_eq!(iteration, 4);
                assert_eq!(s[0].get(&2), Some(&20));
                assert_eq!(s[1].get(&1), Some(&10));
                assert_eq!(w.partition(0), &[(2, 20)]);
            }
            _ => panic!("expected a rollback"),
        }
    }

    #[test]
    fn delta_handler_restarts_before_first_checkpoint() {
        let mut handler: CheckpointDeltaHandler<u64, u64, u64, _> =
            CheckpointDeltaHandler::new(MemoryStore::new(), 3);
        let mut solution: SolutionSets<u64, u64> = vec![Default::default()];
        let mut workset: Partitions<u64> = Partitions::empty(1);
        match handler.on_failure(1, &[0], &mut solution, &mut workset).unwrap() {
            DeltaRecoveryAction::Restart => {}
            _ => panic!("no checkpoint yet: must restart"),
        }
    }
}
