//! The optimistic fault handlers: no checkpoints, no lineage — on failure,
//! invoke the compensation function and keep iterating (paper §2.2).

use dataflow::dataset::{Data, Partitions};
use dataflow::error::Result;
use dataflow::ft::{
    BulkFaultHandler, BulkRecoveryAction, CheckpointCost, DeltaFaultHandler, DeltaRecoveryAction,
    SolutionSets,
};
use dataflow::partition::PartitionId;
use telemetry::{JournalEvent, SinkHandle};

use crate::compensation::{BulkCompensation, DeltaCompensation};

/// Optimistic recovery for bulk iterations.
///
/// `after_superstep` does nothing — this is where the "optimal failure-free
/// performance" of the paper comes from: the handler adds zero work to a
/// failure-free run.
pub struct OptimisticBulkHandler<C> {
    compensation: C,
    recoveries: u32,
    telemetry: SinkHandle,
}

impl<C> OptimisticBulkHandler<C> {
    /// Handler around the given compensation function.
    pub fn new(compensation: C) -> Self {
        OptimisticBulkHandler { compensation, recoveries: 0, telemetry: SinkHandle::disabled() }
    }

    /// Report compensation invocations to the given telemetry sink.
    pub fn with_telemetry(mut self, telemetry: SinkHandle) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Number of failures compensated so far.
    pub fn recoveries(&self) -> u32 {
        self.recoveries
    }
}

impl<T: Data, C: BulkCompensation<T>> BulkFaultHandler<T> for OptimisticBulkHandler<C> {
    fn after_superstep(
        &mut self,
        _iteration: u32,
        _state: &Partitions<T>,
    ) -> Result<Option<CheckpointCost>> {
        // Deliberately empty: no checkpoint, no lineage tracking.
        Ok(None)
    }

    fn on_failure(
        &mut self,
        iteration: u32,
        lost: &[PartitionId],
        state: &mut Partitions<T>,
    ) -> Result<BulkRecoveryAction<T>> {
        self.compensation.compensate(state, lost, iteration);
        self.recoveries += 1;
        self.telemetry.emit(|| JournalEvent::CompensationInvoked {
            name: self.compensation.name().to_owned(),
            iteration,
        });
        Ok(BulkRecoveryAction::Compensated)
    }
}

/// Optimistic recovery for delta iterations: the compensation re-initialises
/// the lost solution-set partitions *and* seeds workset records so the
/// restored keys (and, typically, their neighbours) re-propagate.
pub struct OptimisticDeltaHandler<C> {
    compensation: C,
    recoveries: u32,
    telemetry: SinkHandle,
}

impl<C> OptimisticDeltaHandler<C> {
    /// Handler around the given compensation function.
    pub fn new(compensation: C) -> Self {
        OptimisticDeltaHandler { compensation, recoveries: 0, telemetry: SinkHandle::disabled() }
    }

    /// Report compensation invocations to the given telemetry sink.
    pub fn with_telemetry(mut self, telemetry: SinkHandle) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Number of failures compensated so far.
    pub fn recoveries(&self) -> u32 {
        self.recoveries
    }
}

impl<K: Data, V: Data, W: Data, C: DeltaCompensation<K, V, W>> DeltaFaultHandler<K, V, W>
    for OptimisticDeltaHandler<C>
{
    fn after_superstep(
        &mut self,
        _iteration: u32,
        _solution: &SolutionSets<K, V>,
        _workset: &Partitions<W>,
    ) -> Result<Option<CheckpointCost>> {
        Ok(None)
    }

    fn on_failure(
        &mut self,
        iteration: u32,
        lost: &[PartitionId],
        solution: &mut SolutionSets<K, V>,
        workset: &mut Partitions<W>,
    ) -> Result<DeltaRecoveryAction<K, V, W>> {
        self.compensation.compensate(solution, workset, lost, iteration);
        self.recoveries += 1;
        self.telemetry.emit(|| JournalEvent::CompensationInvoked {
            name: self.compensation.name().to_owned(),
            iteration,
        });
        Ok(DeltaRecoveryAction::Compensated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bulk_handler_compensates_in_place() {
        let mut handler = OptimisticBulkHandler::new(
            |state: &mut Partitions<u64>, lost: &[PartitionId], _iter: u32| {
                for &pid in lost {
                    *state.partition_mut(pid) = vec![0];
                }
            },
        );
        let mut state = Partitions::round_robin(vec![5u64, 6, 7, 8], 2);
        assert!(handler.after_superstep(0, &state).unwrap().is_none());
        state.clear_partition(0);
        match handler.on_failure(1, &[0], &mut state).unwrap() {
            BulkRecoveryAction::Compensated => {}
            _ => panic!("optimistic recovery must compensate"),
        }
        assert_eq!(state.partition(0), &[0]);
        assert_eq!(handler.recoveries(), 1);
    }

    #[test]
    fn delta_handler_seeds_workset() {
        let mut handler = OptimisticDeltaHandler::new(
            |solution: &mut SolutionSets<u64, u64>,
             workset: &mut Partitions<(u64, u64)>,
             lost: &[PartitionId],
             _iter: u32| {
                for &pid in lost {
                    solution[pid].insert(pid as u64, 0);
                    workset.partition_mut(pid).push((pid as u64, 0));
                }
            },
        );
        let mut solution: SolutionSets<u64, u64> = vec![Default::default(); 2];
        let mut workset: Partitions<(u64, u64)> = Partitions::empty(2);
        let action = handler.on_failure(3, &[1], &mut solution, &mut workset).unwrap();
        assert!(matches!(action, DeltaRecoveryAction::Compensated));
        assert!(solution[1].contains_key(&1));
        assert_eq!(workset.total_len(), 1);
    }

    #[test]
    fn failure_free_run_does_no_work() {
        let mut handler =
            OptimisticBulkHandler::new(|_s: &mut Partitions<u64>, _l: &[PartitionId], _i: u32| {
                panic!("compensation must not run without a failure")
            });
        let state = Partitions::round_robin(vec![1u64], 1);
        for iteration in 0..100 {
            assert!(handler.after_superstep(iteration, &state).unwrap().is_none());
        }
        assert_eq!(handler.recoveries(), 0);
    }
}
