//! Asynchronous barrier snapshots: rollback recovery without a global pause.
//!
//! The strongest production competitor to optimistic recovery is not the
//! blocking checkpoint of [`crate::checkpoint`] but the Chandy–Lamport-style
//! *asynchronous* barrier snapshot used by Apache Flink ("Lightweight
//! Asynchronous Snapshots for Distributed Dataflows"): a barrier marker is
//! injected into the dataflow every `interval` iterations, each partition
//! captures its state when the marker passes, and the expensive
//! stable-storage writes happen in the background while the computation
//! keeps running.
//!
//! This module reproduces that cost structure on the superstep loop. When a
//! barrier fires at iteration `E` the handler encodes every partition's
//! state locally (the cheap, aligned capture — the superstep boundary *is*
//! the consistent cut, so no channel draining is needed), then persists
//! **one partition chunk per subsequent superstep**: with parallelism `P`
//! the snapshot of epoch `E` reaches stable storage at iteration `E+P-1`,
//! spreading the write cost instead of stalling the run. An epoch counts
//! only once *every* chunk is durable; recovery restores the last
//! **complete** epoch and never a partial one — a failure mid-flight aborts
//! the in-flight barrier, rolls back to the previous complete epoch (or
//! restarts when none exists), and a fresh barrier fires on recomputation.
//!
//! The cluster coordinator observes barrier life-cycle points through a
//! [`BarrierProbe`] to ship chunks to the owning workers (the barrier
//! marker flowing through the topology) and to snapshot its in-flight
//! channel state alongside.

use std::marker::PhantomData;
use std::time::Instant;

use dataflow::codec::Codec;
use dataflow::dataset::{Data, Partitions};
use dataflow::error::{EngineError, Result};
use dataflow::ft::{
    BulkFaultHandler, BulkRecoveryAction, CheckpointCost, DeltaFaultHandler, DeltaRecoveryAction,
    SolutionSets,
};
use dataflow::partition::PartitionId;
use telemetry::{JournalEvent, SinkHandle};

use crate::checkpoint::StableStore;

/// Barrier life-cycle notification delivered to a [`BarrierProbe`].
#[derive(Debug)]
pub enum BarrierEvent<'a> {
    /// A barrier fired: every partition's chunk was captured locally.
    Started {
        /// The iteration the snapshot belongs to.
        epoch: u32,
        /// Number of partition chunks captured.
        partitions: usize,
    },
    /// One staged chunk reached stable storage.
    ChunkPersisted {
        /// The epoch the chunk belongs to.
        epoch: u32,
        /// The partition the chunk captures.
        pid: PartitionId,
        /// The encoded chunk (for shipping to the owning worker).
        chunk: &'a [u8],
    },
    /// Every chunk of the epoch is durable; it is now the restore point.
    Completed {
        /// The completed epoch.
        epoch: u32,
    },
    /// A failure struck mid-flight; the partial epoch was discarded.
    Aborted {
        /// The discarded epoch.
        epoch: u32,
    },
}

/// Observer of barrier life-cycle points (chunk shipping, channel capture).
pub type BarrierProbe = Box<dyn FnMut(BarrierEvent<'_>)>;

/// One barrier whose chunks are still being written to stable storage.
struct InFlight {
    epoch: u32,
    /// Locally captured chunks, one per partition, persisted in order.
    chunks: Vec<Vec<u8>>,
    /// Index of the next chunk to persist.
    next: usize,
}

/// The last epoch whose every chunk reached stable storage.
#[derive(Debug, Clone, Copy)]
struct Complete {
    epoch: u32,
    partitions: usize,
}

fn chunk_key(prefix: &str, epoch: u32, pid: usize) -> String {
    format!("{prefix}-{epoch}-p{pid}")
}

/// Shared barrier bookkeeping of the bulk and delta handlers.
struct BarrierCore<S> {
    store: S,
    interval: u32,
    prefix: &'static str,
    telemetry: SinkHandle,
    probe: Option<BarrierProbe>,
    in_flight: Option<InFlight>,
    complete: Option<Complete>,
}

impl<S: StableStore> BarrierCore<S> {
    fn new(store: S, interval: u32, prefix: &'static str) -> Self {
        assert!(interval > 0, "snapshot interval must be at least 1");
        BarrierCore {
            store,
            interval,
            prefix,
            telemetry: SinkHandle::disabled(),
            probe: None,
            in_flight: None,
            complete: None,
        }
    }

    fn notify(&mut self, event: BarrierEvent<'_>) {
        if let Some(probe) = &mut self.probe {
            probe(event);
        }
    }

    /// Persist the next pending chunk, completing the epoch when it was the
    /// last one; then fire a new barrier if `iteration` is due and no
    /// barrier is in flight. `capture` encodes one partition's chunk.
    fn advance(
        &mut self,
        iteration: u32,
        partitions: usize,
        capture: impl Fn(usize) -> Vec<u8>,
    ) -> Result<Option<CheckpointCost>> {
        let start = Instant::now();
        let mut persisted = 0u64;
        if self.in_flight.is_some() {
            let (epoch, pid, chunk, is_last) = {
                let in_flight = self.in_flight.as_mut().expect("in-flight barrier present");
                let pid = in_flight.next;
                let chunk = std::mem::take(&mut in_flight.chunks[pid]);
                in_flight.next += 1;
                (in_flight.epoch, pid, chunk, in_flight.next == in_flight.chunks.len())
            };
            self.store.put(&chunk_key(self.prefix, epoch, pid), &chunk)?;
            persisted += chunk.len() as u64;
            self.notify(BarrierEvent::ChunkPersisted { epoch, pid, chunk: &chunk });
            self.in_flight.as_mut().expect("in-flight barrier present").chunks[pid] = chunk;
            if is_last {
                let done = self.in_flight.take().expect("in-flight barrier present");
                let bytes: u64 = done.chunks.iter().map(|c| c.len() as u64).sum();
                let count = done.chunks.len();
                // The new restore point supersedes the previous epoch.
                if let Some(old) = self.complete.replace(Complete { epoch, partitions: count }) {
                    for old_pid in 0..old.partitions {
                        self.store.remove(&chunk_key(self.prefix, old.epoch, old_pid))?;
                    }
                }
                self.telemetry.emit(|| JournalEvent::SnapshotBarrierCompleted {
                    epoch,
                    partitions: count,
                    bytes,
                });
                self.notify(BarrierEvent::Completed { epoch });
            }
        }
        // A barrier due while one is still in flight is skipped (the next
        // multiple of `interval` after completion fires instead) — one
        // snapshot at a time, like Flink's default concurrent-checkpoint
        // limit of 1.
        if self.in_flight.is_none() && iteration.is_multiple_of(self.interval) {
            let chunks: Vec<Vec<u8>> = (0..partitions).map(&capture).collect();
            self.telemetry
                .emit(|| JournalEvent::SnapshotBarrierStarted { epoch: iteration, partitions });
            self.notify(BarrierEvent::Started { epoch: iteration, partitions });
            let first = &chunks[0];
            self.store.put(&chunk_key(self.prefix, iteration, 0), first)?;
            persisted += first.len() as u64;
            self.notify(BarrierEvent::ChunkPersisted { epoch: iteration, pid: 0, chunk: first });
            if partitions == 1 {
                // Degenerate single-partition case: durable immediately.
                let bytes = first.len() as u64;
                if let Some(old) = self.complete.replace(Complete { epoch: iteration, partitions })
                {
                    for old_pid in 0..old.partitions {
                        self.store.remove(&chunk_key(self.prefix, old.epoch, old_pid))?;
                    }
                }
                self.telemetry.emit(|| JournalEvent::SnapshotBarrierCompleted {
                    epoch: iteration,
                    partitions,
                    bytes,
                });
                self.notify(BarrierEvent::Completed { epoch: iteration });
            } else {
                self.in_flight = Some(InFlight { epoch: iteration, chunks, next: 1 });
            }
        }
        if persisted == 0 {
            return Ok(None);
        }
        Ok(Some(CheckpointCost { bytes: persisted, duration: start.elapsed() }))
    }

    /// Discard a partial in-flight epoch (failure mid-snapshot): recovery
    /// must never restore from it.
    fn abort_in_flight(&mut self) -> Result<()> {
        if let Some(in_flight) = self.in_flight.take() {
            for pid in 0..in_flight.next {
                self.store.remove(&chunk_key(self.prefix, in_flight.epoch, pid))?;
            }
            self.notify(BarrierEvent::Aborted { epoch: in_flight.epoch });
        }
        Ok(())
    }

    /// Fetch the chunks of the last complete epoch, if any.
    fn complete_chunks(&self) -> Result<Option<(u32, Vec<Vec<u8>>)>> {
        let Some(complete) = self.complete else { return Ok(None) };
        let mut chunks = Vec::with_capacity(complete.partitions);
        for pid in 0..complete.partitions {
            let key = chunk_key(self.prefix, complete.epoch, pid);
            let chunk = self.store.get(&key)?.ok_or_else(|| {
                EngineError::Recovery(format!("snapshot chunk {key} vanished from stable storage"))
            })?;
            chunks.push(chunk);
        }
        Ok(Some((complete.epoch, chunks)))
    }
}

/// Asynchronous-barrier-snapshot handler for bulk iterations.
///
/// See the [module docs](self) for the mechanism. Restores carry the last
/// complete epoch's state; before the first epoch completes, failures
/// degrade to a restart (exactly like [`crate::checkpoint`] before its
/// first snapshot).
pub struct AsyncSnapshotBulkHandler<T, S> {
    core: BarrierCore<S>,
    _records: PhantomData<fn(T)>,
}

impl<T, S: StableStore> AsyncSnapshotBulkHandler<T, S> {
    /// Fire a barrier at iterations `0, interval, 2·interval, ...` (skipping
    /// multiples that land while a snapshot is still in flight).
    ///
    /// # Panics
    /// Panics when `interval` is zero.
    pub fn new(store: S, interval: u32) -> Self {
        AsyncSnapshotBulkHandler {
            core: BarrierCore::new(store, interval, "async-bulk"),
            _records: PhantomData,
        }
    }

    /// Report barrier starts/completions and restores to the given sink.
    pub fn with_telemetry(mut self, telemetry: SinkHandle) -> Self {
        self.core.telemetry = telemetry;
        self
    }

    /// Observe barrier life-cycle points (the cluster coordinator ships
    /// chunks to workers and captures channel state from here).
    pub fn with_probe(mut self, probe: BarrierProbe) -> Self {
        self.core.probe = Some(probe);
        self
    }

    /// The epoch of the last complete (restorable) snapshot, if any.
    pub fn latest_complete(&self) -> Option<u32> {
        self.core.complete.map(|c| c.epoch)
    }

    /// The epoch of the snapshot currently being written, if any.
    pub fn in_flight_epoch(&self) -> Option<u32> {
        self.core.in_flight.as_ref().map(|f| f.epoch)
    }

    /// Borrow the underlying store (e.g. for byte accounting).
    pub fn store(&self) -> &S {
        &self.core.store
    }
}

impl<T: Data + Codec, S: StableStore> BulkFaultHandler<T> for AsyncSnapshotBulkHandler<T, S> {
    fn after_superstep(
        &mut self,
        iteration: u32,
        state: &Partitions<T>,
    ) -> Result<Option<CheckpointCost>> {
        let parts = state.as_parts();
        self.core.advance(iteration, parts.len(), |pid| {
            let mut out = Vec::new();
            parts[pid].encode(&mut out);
            out
        })
    }

    fn on_failure(
        &mut self,
        _iteration: u32,
        _lost: &[PartitionId],
        _state: &mut Partitions<T>,
    ) -> Result<BulkRecoveryAction<T>> {
        self.core.abort_in_flight()?;
        match self.core.complete_chunks()? {
            None => Ok(BulkRecoveryAction::Restart),
            Some((epoch, chunks)) => {
                let mut parts = Vec::with_capacity(chunks.len());
                for chunk in &chunks {
                    parts.push(dataflow::codec::decode_exact::<Vec<T>>(chunk)?);
                }
                self.core.telemetry.emit(|| JournalEvent::CheckpointRestored { iteration: epoch });
                Ok(BulkRecoveryAction::Restored {
                    iteration: epoch,
                    state: Partitions::from_parts(parts),
                })
            }
        }
    }
}

/// Asynchronous-barrier-snapshot handler for delta iterations: each
/// partition chunk carries that partition's solution set and workset.
pub struct AsyncSnapshotDeltaHandler<K, V, W, S> {
    core: BarrierCore<S>,
    _records: PhantomData<fn(K, V, W)>,
}

impl<K, V, W, S: StableStore> AsyncSnapshotDeltaHandler<K, V, W, S> {
    /// Fire a barrier at iterations `0, interval, 2·interval, ...` (skipping
    /// multiples that land while a snapshot is still in flight).
    ///
    /// # Panics
    /// Panics when `interval` is zero.
    pub fn new(store: S, interval: u32) -> Self {
        AsyncSnapshotDeltaHandler {
            core: BarrierCore::new(store, interval, "async-delta"),
            _records: PhantomData,
        }
    }

    /// Report barrier starts/completions and restores to the given sink.
    pub fn with_telemetry(mut self, telemetry: SinkHandle) -> Self {
        self.core.telemetry = telemetry;
        self
    }

    /// Observe barrier life-cycle points.
    pub fn with_probe(mut self, probe: BarrierProbe) -> Self {
        self.core.probe = Some(probe);
        self
    }

    /// The epoch of the last complete (restorable) snapshot, if any.
    pub fn latest_complete(&self) -> Option<u32> {
        self.core.complete.map(|c| c.epoch)
    }

    /// The epoch of the snapshot currently being written, if any.
    pub fn in_flight_epoch(&self) -> Option<u32> {
        self.core.in_flight.as_ref().map(|f| f.epoch)
    }

    /// Borrow the underlying store.
    pub fn store(&self) -> &S {
        &self.core.store
    }
}

impl<K, V, W, S> DeltaFaultHandler<K, V, W> for AsyncSnapshotDeltaHandler<K, V, W, S>
where
    K: Data + Codec + std::hash::Hash + Eq,
    V: Data + Codec,
    W: Data + Codec,
    S: StableStore,
{
    fn after_superstep(
        &mut self,
        iteration: u32,
        solution: &SolutionSets<K, V>,
        workset: &Partitions<W>,
    ) -> Result<Option<CheckpointCost>> {
        debug_assert_eq!(solution.len(), workset.num_partitions());
        let worksets = workset.as_parts();
        self.core.advance(iteration, solution.len(), |pid| {
            let mut out = Vec::new();
            let entries: Vec<(K, V)> =
                solution[pid].iter().map(|(k, v)| (k.clone(), v.clone())).collect();
            entries.encode(&mut out);
            worksets[pid].encode(&mut out);
            out
        })
    }

    fn on_failure(
        &mut self,
        _iteration: u32,
        _lost: &[PartitionId],
        _solution: &mut SolutionSets<K, V>,
        _workset: &mut Partitions<W>,
    ) -> Result<DeltaRecoveryAction<K, V, W>> {
        self.core.abort_in_flight()?;
        match self.core.complete_chunks()? {
            None => Ok(DeltaRecoveryAction::Restart),
            Some((epoch, chunks)) => {
                let mut solution: SolutionSets<K, V> = Vec::with_capacity(chunks.len());
                let mut worksets = Vec::with_capacity(chunks.len());
                for chunk in &chunks {
                    let mut input = chunk.as_slice();
                    let entries = Vec::<(K, V)>::decode(&mut input)?;
                    let part = Vec::<W>::decode(&mut input)?;
                    if !input.is_empty() {
                        return Err(EngineError::Codec(
                            "trailing bytes in async snapshot chunk".into(),
                        ));
                    }
                    let mut set = dataflow::hash::FxHashMap::default();
                    set.extend(entries);
                    solution.push(set);
                    worksets.push(part);
                }
                self.core.telemetry.emit(|| JournalEvent::CheckpointRestored { iteration: epoch });
                Ok(DeltaRecoveryAction::Restored {
                    iteration: epoch,
                    solution,
                    workset: Partitions::from_parts(worksets),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use std::cell::RefCell;
    use std::rc::Rc;

    use super::*;
    use crate::checkpoint::MemoryStore;

    fn state(round: u64) -> Partitions<u64> {
        Partitions::round_robin((0..8).map(|v| v + 100 * round).collect(), 4)
    }

    #[test]
    fn snapshot_writes_spread_over_supersteps() {
        let mut handler: AsyncSnapshotBulkHandler<u64, _> =
            AsyncSnapshotBulkHandler::new(MemoryStore::new(), 4);
        // Barrier fires at iteration 0; with 4 partitions one chunk lands
        // per superstep, so the epoch completes at iteration 3.
        assert!(handler.after_superstep(0, &state(0)).unwrap().is_some());
        assert_eq!(handler.in_flight_epoch(), Some(0));
        assert_eq!(handler.latest_complete(), None);
        assert_eq!(handler.store().len(), 1);
        assert!(handler.after_superstep(1, &state(1)).unwrap().is_some());
        assert!(handler.after_superstep(2, &state(2)).unwrap().is_some());
        assert_eq!(handler.store().len(), 3);
        assert!(handler.after_superstep(3, &state(3)).unwrap().is_some());
        assert_eq!(handler.in_flight_epoch(), None);
        assert_eq!(handler.latest_complete(), Some(0));
        assert_eq!(handler.store().len(), 4);

        // A complete epoch restores the state as of the barrier iteration.
        let mut broken = state(4);
        broken.clear_partition(1);
        match handler.on_failure(4, &[1], &mut broken).unwrap() {
            BulkRecoveryAction::Restored { iteration, state: restored } => {
                assert_eq!(iteration, 0);
                assert_eq!(restored, state(0));
            }
            _ => panic!("expected a restore from the complete epoch"),
        }
    }

    #[test]
    fn completed_epochs_supersede_and_garbage_collect_older_ones() {
        let mut handler: AsyncSnapshotBulkHandler<u64, _> =
            AsyncSnapshotBulkHandler::new(MemoryStore::new(), 4);
        // Epoch 0 completes at iteration 3; epoch 4 completes at 7.
        for iteration in 0..8 {
            handler.after_superstep(iteration, &state(u64::from(iteration))).unwrap();
        }
        assert_eq!(handler.latest_complete(), Some(4));
        assert_eq!(handler.store().len(), 4, "epoch 0's chunks were garbage collected");
        let mut broken = state(8);
        broken.clear_partition(0);
        match handler.on_failure(8, &[0], &mut broken).unwrap() {
            BulkRecoveryAction::Restored { iteration, state: restored } => {
                assert_eq!(iteration, 4);
                assert_eq!(restored, state(4));
            }
            _ => panic!("expected a restore from epoch 4"),
        }
    }

    #[test]
    fn never_restores_from_a_partial_snapshot() {
        let mut handler: AsyncSnapshotBulkHandler<u64, _> =
            AsyncSnapshotBulkHandler::new(MemoryStore::new(), 4);
        // Two chunks of epoch 0 are durable, two are not: the failure must
        // degrade to a restart, never restore the partial epoch.
        handler.after_superstep(0, &state(0)).unwrap();
        handler.after_superstep(1, &state(1)).unwrap();
        let mut broken = state(2);
        broken.clear_partition(2);
        match handler.on_failure(2, &[2], &mut broken).unwrap() {
            BulkRecoveryAction::Restart => {}
            _ => panic!("a partial snapshot must never be restored"),
        }
        assert_eq!(handler.store().len(), 0, "partial chunks were discarded");
        assert_eq!(handler.in_flight_epoch(), None);
    }

    #[test]
    fn failure_mid_flight_falls_back_to_the_previous_complete_epoch() {
        let mut handler: AsyncSnapshotBulkHandler<u64, _> =
            AsyncSnapshotBulkHandler::new(MemoryStore::new(), 4);
        for iteration in 0..6 {
            handler.after_superstep(iteration, &state(u64::from(iteration))).unwrap();
        }
        // Epoch 0 is complete; epoch 4 has persisted chunks 0 and 1 only.
        assert_eq!(handler.latest_complete(), Some(0));
        assert_eq!(handler.in_flight_epoch(), Some(4));
        let mut broken = state(6);
        broken.clear_partition(3);
        match handler.on_failure(6, &[3], &mut broken).unwrap() {
            BulkRecoveryAction::Restored { iteration, state: restored } => {
                assert_eq!(iteration, 0, "the in-flight epoch 4 must be skipped");
                assert_eq!(restored, state(0));
            }
            _ => panic!("expected a restore from epoch 0"),
        }
        assert_eq!(handler.store().len(), 4, "epoch 4's partial chunks were discarded");
    }

    #[test]
    fn barriers_due_mid_flight_are_skipped() {
        // interval 2 < parallelism 4: the barrier at iteration 2 lands while
        // epoch 0 is still persisting and is skipped; the next barrier fires
        // at iteration 4 (the first multiple after completion).
        let mut handler: AsyncSnapshotBulkHandler<u64, _> =
            AsyncSnapshotBulkHandler::new(MemoryStore::new(), 2);
        for iteration in 0..4 {
            handler.after_superstep(iteration, &state(u64::from(iteration))).unwrap();
        }
        assert_eq!(handler.latest_complete(), Some(0));
        assert_eq!(handler.in_flight_epoch(), None);
        handler.after_superstep(4, &state(4)).unwrap();
        assert_eq!(handler.in_flight_epoch(), Some(4));
    }

    #[test]
    fn probe_sees_the_barrier_life_cycle_in_order() {
        let seen: Rc<RefCell<Vec<String>>> = Rc::default();
        let log = seen.clone();
        let mut handler: AsyncSnapshotBulkHandler<u64, _> =
            AsyncSnapshotBulkHandler::new(MemoryStore::new(), 4).with_probe(Box::new(
                move |event| {
                    log.borrow_mut().push(match event {
                        BarrierEvent::Started { epoch, partitions } => {
                            format!("start:{epoch}:{partitions}")
                        }
                        BarrierEvent::ChunkPersisted { epoch, pid, .. } => {
                            format!("chunk:{epoch}:{pid}")
                        }
                        BarrierEvent::Completed { epoch } => format!("done:{epoch}"),
                        BarrierEvent::Aborted { epoch } => format!("abort:{epoch}"),
                    });
                },
            ));
        for iteration in 0..5 {
            handler.after_superstep(iteration, &state(u64::from(iteration))).unwrap();
        }
        let mut broken = state(5);
        broken.clear_partition(0);
        handler.on_failure(5, &[0], &mut broken).unwrap();
        assert_eq!(
            *seen.borrow(),
            vec![
                "start:0:4",
                "chunk:0:0",
                "chunk:0:1",
                "chunk:0:2",
                "chunk:0:3",
                "done:0",
                "start:4:4",
                "chunk:4:0",
                "abort:4",
            ],
            "every chunk is reported, completion after the final chunk, partials via Aborted"
        );
    }

    #[test]
    fn single_partition_snapshots_complete_immediately() {
        let mut handler: AsyncSnapshotBulkHandler<u64, _> =
            AsyncSnapshotBulkHandler::new(MemoryStore::new(), 3);
        let state = Partitions::round_robin(vec![7u64, 8, 9], 1);
        handler.after_superstep(0, &state).unwrap();
        assert_eq!(handler.latest_complete(), Some(0));
        assert_eq!(handler.in_flight_epoch(), None);
    }

    #[test]
    fn delta_chunks_roundtrip_solution_and_workset() {
        let mut handler: AsyncSnapshotDeltaHandler<u64, u64, (u64, u64), _> =
            AsyncSnapshotDeltaHandler::new(MemoryStore::new(), 2);
        let mut solution: SolutionSets<u64, u64> = vec![Default::default(); 2];
        solution[0].insert(2, 20);
        solution[1].insert(1, 10);
        let workset = Partitions::from_parts(vec![vec![(2u64, 20u64)], vec![(1u64, 10u64)]]);
        // Two partitions: the epoch at iteration 0 completes at iteration 1.
        handler.after_superstep(0, &solution, &workset).unwrap();
        assert_eq!(handler.latest_complete(), None);
        handler.after_superstep(1, &solution, &workset).unwrap();
        assert_eq!(handler.latest_complete(), Some(0));

        let mut broken_solution: SolutionSets<u64, u64> = vec![Default::default(); 2];
        let mut broken_workset = Partitions::empty(2);
        match handler.on_failure(2, &[0], &mut broken_solution, &mut broken_workset).unwrap() {
            DeltaRecoveryAction::Restored { iteration, solution: s, workset: w } => {
                assert_eq!(iteration, 0);
                assert_eq!(s[0].get(&2), Some(&20));
                assert_eq!(s[1].get(&1), Some(&10));
                assert_eq!(w.partition(0), &[(2, 20)]);
                assert_eq!(w.partition(1), &[(1, 10)]);
            }
            _ => panic!("expected a restore"),
        }
    }

    #[test]
    fn delta_partial_snapshots_restart() {
        let mut handler: AsyncSnapshotDeltaHandler<u64, u64, u64, _> =
            AsyncSnapshotDeltaHandler::new(MemoryStore::new(), 1);
        let solution: SolutionSets<u64, u64> = vec![Default::default(); 3];
        let workset: Partitions<u64> = Partitions::empty(3);
        handler.after_superstep(0, &solution, &workset).unwrap();
        let mut broken_solution: SolutionSets<u64, u64> = vec![Default::default(); 3];
        let mut broken_workset: Partitions<u64> = Partitions::empty(3);
        match handler.on_failure(1, &[1], &mut broken_solution, &mut broken_workset).unwrap() {
            DeltaRecoveryAction::Restart => {}
            _ => panic!("no complete epoch yet: must restart"),
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_interval_is_rejected() {
        let _: AsyncSnapshotBulkHandler<u64, MemoryStore> =
            AsyncSnapshotBulkHandler::new(MemoryStore::new(), 0);
    }
}
