//! The ablation "strategy": acknowledge the failure and do nothing.
//!
//! Without a compensation function the fixpoint still *terminates* in many
//! cases — but on the wrong input: Connected Components simply forgets the
//! lost vertices, PageRank loses probability mass and converges to ranks
//! that no longer form a distribution. Experiment A1 uses this handler to
//! show why optimistic recovery needs the compensation function at all.

use dataflow::dataset::{Data, Partitions};
use dataflow::error::Result;
use dataflow::ft::{
    BulkFaultHandler, BulkRecoveryAction, DeltaFaultHandler, DeltaRecoveryAction, SolutionSets,
};
use dataflow::partition::PartitionId;

/// Leaves lost partitions empty and lets the iteration continue.
#[derive(Debug, Default, Clone, Copy)]
pub struct IgnoreHandler;

impl<T: Data> BulkFaultHandler<T> for IgnoreHandler {
    fn on_failure(
        &mut self,
        _iteration: u32,
        _lost: &[PartitionId],
        _state: &mut Partitions<T>,
    ) -> Result<BulkRecoveryAction<T>> {
        Ok(BulkRecoveryAction::Ignore)
    }
}

impl<K: Data, V: Data, W: Data> DeltaFaultHandler<K, V, W> for IgnoreHandler {
    fn on_failure(
        &mut self,
        _iteration: u32,
        _lost: &[PartitionId],
        _solution: &mut SolutionSets<K, V>,
        _workset: &mut Partitions<W>,
    ) -> Result<DeltaRecoveryAction<K, V, W>> {
        Ok(DeltaRecoveryAction::Ignore)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ignore_leaves_state_untouched() {
        let mut handler = IgnoreHandler;
        let mut state = Partitions::round_robin(vec![1u64, 2, 3, 4], 2);
        state.clear_partition(0);
        let before = state.clone();
        let action = BulkFaultHandler::on_failure(&mut handler, 2, &[0], &mut state).unwrap();
        assert!(matches!(action, BulkRecoveryAction::Ignore));
        assert_eq!(state, before);
    }
}
