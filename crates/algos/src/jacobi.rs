//! Jacobi iteration for linear systems as a bulk iteration — an extension
//! algorithm with a *provable* compensation argument.
//!
//! For a strictly diagonally dominant system `A x = b`, the Jacobi update
//! `x_i' = (b_i - Σ_{j≠i} a_ij x_j) / a_ii` is a contraction in the ∞-norm,
//! so it converges to the unique solution from **any** starting vector.
//! Resetting lost entries to the initial guess (zero) therefore preserves
//! convergence exactly — the cleanest instance of the paper's "robust
//! fixpoint" class.

use dataflow::dataset::Partitions;
use dataflow::error::Result;
use dataflow::partition::PartitionId;
use dataflow::prelude::BulkIteration;
use dataflow::stats::RunStats;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use recovery::compensation::{lost_keys, BulkCompensation};

use crate::common::{self, FtConfig};

/// One matrix row: `(i, b_i, a_ii, off-diagonal entries (j, a_ij))`.
pub type Row = (u64, f64, f64, Vec<(u64, f64)>);

/// A solution entry `(i, x_i)`.
pub type Entry = (u64, f64);

/// A sparse, strictly diagonally dominant linear system.
#[derive(Debug, Clone)]
pub struct LinearSystem {
    /// Matrix rows, one per unknown, indexed by row id.
    pub rows: Vec<Row>,
}

impl LinearSystem {
    /// Number of unknowns.
    pub fn dimension(&self) -> usize {
        self.rows.len()
    }

    /// Maximum absolute residual `|A x - b|_∞` for a candidate solution
    /// given as `x[i]`.
    pub fn residual(&self, x: &[f64]) -> f64 {
        self.rows
            .iter()
            .map(|(i, b, diag, offs)| {
                let mut lhs = diag * x[*i as usize];
                for &(j, a) in offs {
                    lhs += a * x[j as usize];
                }
                (lhs - b).abs()
            })
            .fold(0.0, f64::max)
    }

    /// Reference solution by dense Jacobi iteration to tight tolerance.
    pub fn reference_solution(&self) -> Vec<f64> {
        let n = self.dimension();
        let mut x = vec![0.0f64; n];
        for _ in 0..10_000 {
            let mut next = vec![0.0f64; n];
            for (i, b, diag, offs) in &self.rows {
                let mut sum = 0.0;
                for &(j, a) in offs {
                    sum += a * x[j as usize];
                }
                next[*i as usize] = (b - sum) / diag;
            }
            let delta = x.iter().zip(&next).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
            x = next;
            if delta < 1e-14 {
                break;
            }
        }
        x
    }
}

/// Generate a random strictly diagonally dominant system with about
/// `off_per_row` off-diagonal entries per row.
pub fn random_diagonally_dominant(n: usize, off_per_row: usize, seed: u64) -> LinearSystem {
    assert!(n > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let rows = (0..n as u64)
        .map(|i| {
            let mut offs: Vec<(u64, f64)> = Vec::with_capacity(off_per_row);
            while offs.len() < off_per_row.min(n - 1) {
                let j = rng.gen_range(0..n as u64);
                if j != i && !offs.iter().any(|&(jj, _)| jj == j) {
                    offs.push((j, rng.gen_range(-1.0..1.0)));
                }
            }
            let dominance: f64 =
                offs.iter().map(|&(_, a)| a.abs()).sum::<f64>() + 1.0 + rng.gen::<f64>();
            let b = rng.gen_range(-10.0..10.0);
            (i, b, dominance, offs)
        })
        .collect();
    LinearSystem { rows }
}

/// Configuration of a Jacobi run.
#[derive(Debug, Clone)]
pub struct JacobiConfig {
    /// Number of partitions / simulated workers.
    pub parallelism: usize,
    /// Iteration cap.
    pub max_iterations: u32,
    /// Stop once no entry moves by more than this between iterations.
    pub epsilon: f64,
    /// Recovery strategy and failure scenario.
    pub ft: FtConfig,
}

impl Default for JacobiConfig {
    fn default() -> Self {
        JacobiConfig {
            parallelism: 4,
            max_iterations: 500,
            epsilon: 1e-10,
            ft: FtConfig::default(),
        }
    }
}

/// Result of a Jacobi run.
#[derive(Debug, Clone)]
pub struct JacobiResult {
    /// Final `(i, x_i)` entries, sorted by index.
    pub solution: Vec<Entry>,
    /// Maximum absolute residual of the final solution.
    pub residual: f64,
    /// Per-superstep engine statistics.
    pub stats: RunStats,
}

/// Compensation for Jacobi: reset lost entries to the initial guess (zero).
pub struct FixSolution {
    dimension: usize,
    parallelism: usize,
}

impl FixSolution {
    /// Compensation for a system of the given dimension.
    pub fn new(dimension: usize, parallelism: usize) -> Self {
        FixSolution { dimension, parallelism }
    }
}

impl BulkCompensation<Entry> for FixSolution {
    fn compensate(&mut self, state: &mut Partitions<Entry>, lost: &[PartitionId], _iteration: u32) {
        for (i, pid) in lost_keys(self.dimension as u64, self.parallelism, lost) {
            state.partition_mut(pid).push((i, 0.0));
        }
    }

    fn name(&self) -> &str {
        "FixSolution"
    }
}

/// Solve a strictly diagonally dominant system with distributed Jacobi.
pub fn run(system: &LinearSystem, config: &JacobiConfig) -> Result<JacobiResult> {
    let n = system.dimension();
    let env = crate::common::environment(config.parallelism, &config.ft);
    let initial: Vec<Entry> = (0..n as u64).map(|i| (i, 0.0)).collect();
    let x0 = env.from_keyed_vec(initial, |e| e.0);
    let rows_ds = env.from_keyed_vec(system.rows.clone(), |r: &Row| r.0);

    let mut iteration = BulkIteration::new(&x0, config.max_iterations);
    iteration.set_fault_handler(common::bulk_handler(
        &config.ft,
        FixSolution::new(n, config.parallelism),
    )?);
    iteration.set_failure_source(config.ft.scenario.to_source());
    // Convergence norm: L1 movement of the solution vector; entries moving
    // more than epsilon count as changed (the termination metric).
    let probe_epsilon = config.epsilon;
    iteration.set_convergence_probe(common::keyed_bulk_probe(
        |e: &Entry| e.0,
        |old, new| old.map_or_else(|| new.1.abs(), |o| (new.1 - o.1).abs()),
        probe_epsilon,
    ));

    let rows_in = iteration.import(&rows_ds);
    let x = iteration.state();

    // Scatter the matrix entries, pair each with the current x_j...
    let entries = rows_in.flat_map("matrix-entries", |(i, _, _, offs): &Row| {
        offs.iter().map(|&(j, a)| (*i, j, a)).collect()
    });
    let products = entries
        .join(
            "multiply",
            &x,
            |e: &(u64, u64, f64)| e.1,
            |xe: &Entry| xe.0,
            |e, xe| (e.0, e.2 * xe.1),
        )
        .measured(common::MESSAGES);
    // ...sum per row...
    let row_sums = products.reduce_by_key("row-sums", |p: &Entry| p.0, |a, b| (a.0, a.1 + b.1));
    // ...and apply the Jacobi update (rows with no off-diagonals get sum 0).
    let next = rows_in.co_group(
        "jacobi-update",
        &row_sums,
        |r: &Row| r.0,
        |s: &Entry| s.0,
        |&i, rows, sums| {
            let (_, b, diag, _) = rows.first().expect("every row id is a matrix row");
            let sum = sums.first().map_or(0.0, |s| s.1);
            vec![(i, (b - sum) / diag)]
        },
    );
    let epsilon = config.epsilon;
    let moving = next
        .join("compare-to-old", &x, |a: &Entry| a.0, |b: &Entry| b.0, |a, b| (a.1 - b.1).abs())
        .filter("still-moving", move |d| *d > epsilon);
    let (result, handle) = iteration.close_with_termination(next, moving);

    let mut solution = result.collect()?;
    solution.sort_by_key(|a| a.0);
    let stats = handle.take().expect("iteration executed");
    let mut dense = vec![0.0f64; n];
    for &(i, v) in &solution {
        dense[i as usize] = v;
    }
    let residual = system.residual(&dense);
    Ok(JacobiResult { solution, residual, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use recovery::scenario::FailureScenario;
    use recovery::strategy::Strategy;

    #[test]
    fn solves_a_small_system_exactly() {
        // 4x + y = 9, x + 5y = 11  =>  x = 34/19, y = 35/19... verify by residual.
        let system = LinearSystem {
            rows: vec![(0, 9.0, 4.0, vec![(1, 1.0)]), (1, 11.0, 5.0, vec![(0, 1.0)])],
        };
        let result = run(&system, &JacobiConfig::default()).unwrap();
        assert!(result.stats.converged);
        assert!(result.residual < 1e-8, "residual {}", result.residual);
    }

    #[test]
    fn solves_random_dominant_systems() {
        let system = random_diagonally_dominant(64, 4, 13);
        let result = run(&system, &JacobiConfig::default()).unwrap();
        assert!(result.stats.converged);
        assert!(result.residual < 1e-8, "residual {}", result.residual);
        let reference = system.reference_solution();
        for &(i, v) in &result.solution {
            assert!((v - reference[i as usize]).abs() < 1e-8);
        }
    }

    #[test]
    fn optimistic_recovery_reaches_the_same_solution() {
        let system = random_diagonally_dominant(64, 4, 13);
        let failure_free = run(&system, &JacobiConfig::default()).unwrap();
        let config = JacobiConfig {
            ft: FtConfig::optimistic(FailureScenario::none().fail_at(3, &[0]).fail_at(8, &[1, 2])),
            ..Default::default()
        };
        let result = run(&system, &config).unwrap();
        assert!(result.stats.converged);
        assert_eq!(result.stats.failures().count(), 2);
        assert!(result.residual < 1e-8, "residual {}", result.residual);
        for (a, b) in result.solution.iter().zip(&failure_free.solution) {
            assert!((a.1 - b.1).abs() < 1e-7, "{a:?} vs {b:?}");
        }
        // Compensation resets part of the state, so convergence takes longer.
        assert!(result.stats.supersteps() >= failure_free.stats.supersteps());
    }

    #[test]
    fn all_strategies_converge_to_the_unique_solution() {
        // Even Ignore: the bulk recomputation regenerates every entry from
        // the (loop-invariant) matrix rows, and the contraction converges
        // from the implicitly-zeroed state. The cost is accuracy *per time*,
        // not correctness — this is exactly the "self-stabilising" end of
        // the paper's algorithm spectrum.
        let system = random_diagonally_dominant(32, 3, 5);
        for strategy in [
            Strategy::Optimistic,
            Strategy::Checkpoint { interval: 5 },
            Strategy::Restart,
            Strategy::Ignore,
        ] {
            let config = JacobiConfig {
                ft: FtConfig {
                    strategy,
                    scenario: FailureScenario::none().fail_at(4, &[1]),
                    ..Default::default()
                },
                ..Default::default()
            };
            let result = run(&system, &config).unwrap();
            assert!(result.residual < 1e-8, "strategy {strategy:?}: residual {}", result.residual);
        }
    }

    #[test]
    fn generator_is_dominant_and_seeded() {
        let a = random_diagonally_dominant(20, 3, 99);
        let b = random_diagonally_dominant(20, 3, 99);
        assert_eq!(a.rows.len(), b.rows.len());
        for ((i1, b1, d1, o1), (i2, b2, d2, o2)) in a.rows.iter().zip(&b.rows) {
            assert_eq!((i1, o1), (i2, o2));
            assert_eq!(b1, b2);
            assert_eq!(d1, d2);
            let off_sum: f64 = o1.iter().map(|&(_, v)| v.abs()).sum();
            assert!(*d1 > off_sum, "row {i1} not dominant");
        }
    }

    #[test]
    fn residual_of_reference_is_tiny() {
        let system = random_diagonally_dominant(48, 4, 3);
        let reference = system.reference_solution();
        assert!(system.residual(&reference) < 1e-10);
    }
}
