//! Low-rank matrix factorisation with Alternating Least Squares (ALS) as a
//! bulk iteration — the third algorithm class evaluated for optimistic
//! recovery in the underlying CIKM 2013 paper ("All Roads Lead to Rome").
//!
//! Given sparse ratings `R[u, i]`, find rank-`k` factors `P` (users) and
//! `Q` (items) minimising `Σ (r - p_u · q_i)² + λ(‖P‖² + ‖Q‖²)`. Every
//! superstep performs one full ALS sweep: users are re-solved against the
//! current item factors, then items against the *new* user factors — each
//! step solves a small `k × k` ridge-regression system per row, so a sweep
//! never increases the objective.
//!
//! **Compensation (`FixFactors`)**: a failure destroys the factor vectors of
//! the rows hashed to the lost partitions. Re-initialising them with their
//! deterministic starting vectors leaves a valid factor model; subsequent
//! sweeps monotonically reduce the objective again, so the run converges to
//! a local optimum of the same quality as a failure-free run.

use dataflow::dataset::Partitions;
use dataflow::error::Result;
use dataflow::partition::PartitionId;
use dataflow::prelude::BulkIteration;
use dataflow::stats::RunStats;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use recovery::compensation::{lost_keys, BulkCompensation};

use crate::common::{self, FtConfig};

/// One observed rating.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rating {
    /// User index (`0..num_users`).
    pub user: u64,
    /// Item index (`0..num_items`).
    pub item: u64,
    /// Observed value.
    pub value: f64,
}

/// A factor row: node id plus its latent vector. Users occupy ids
/// `0..num_users`, items are shifted to `num_users..num_users+num_items`.
pub type FactorRow = (u64, Vec<f64>);

/// Configuration of an ALS run.
#[derive(Debug, Clone)]
pub struct AlsConfig {
    /// Number of partitions / simulated workers.
    pub parallelism: usize,
    /// Number of full ALS sweeps (each superstep = one sweep).
    pub sweeps: u32,
    /// Latent factor dimensionality.
    pub rank: usize,
    /// Ridge regularisation λ.
    pub lambda: f64,
    /// Seed for the deterministic factor initialisation.
    pub seed: u64,
    /// Recovery strategy and failure scenario.
    pub ft: FtConfig,
}

impl Default for AlsConfig {
    fn default() -> Self {
        AlsConfig {
            parallelism: 4,
            sweeps: 12,
            rank: 6,
            lambda: 0.05,
            seed: 7,
            ft: FtConfig::default(),
        }
    }
}

/// Result of an ALS run.
#[derive(Debug, Clone)]
pub struct AlsResult {
    /// User factor rows, sorted by user id.
    pub user_factors: Vec<FactorRow>,
    /// Item factor rows, sorted by item id (ids shifted back to `0..`).
    pub item_factors: Vec<FactorRow>,
    /// Root-mean-square error over the training ratings.
    pub rmse: f64,
    /// Per-superstep engine statistics (gauge `rmse` tracks the sweep-wise
    /// training error).
    pub stats: RunStats,
}

/// Deterministic initial factor vector for a node — shared by the
/// initialisation and the compensation so recovery is exactly a reset.
pub fn initial_factors(node: u64, rank: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed ^ node.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    (0..rank).map(|_| rng.gen_range(0.1..1.0) / rank as f64 * 4.0).collect()
}

/// Solve the `k × k` ridge system `(A + λ n I) x = b` by Gaussian
/// elimination with partial pivoting. `A` is symmetric positive
/// semi-definite (a Gram matrix), so the system is well conditioned for
/// λ > 0.
fn solve_ridge(mut a: Vec<Vec<f64>>, mut b: Vec<f64>, lambda: f64, n: usize) -> Vec<f64> {
    let k = b.len();
    for (i, row) in a.iter_mut().enumerate() {
        row[i] += lambda * n.max(1) as f64;
    }
    for col in 0..k {
        // Partial pivot.
        let pivot = (col..k)
            .max_by(|&x, &y| a[x][col].abs().total_cmp(&a[y][col].abs()))
            .expect("non-empty column");
        a.swap(col, pivot);
        b.swap(col, pivot);
        let diag = a[col][col];
        debug_assert!(diag.abs() > 1e-12, "ridge system is singular");
        for row in (col + 1)..k {
            let factor = a[row][col] / diag;
            if factor == 0.0 {
                continue;
            }
            let pivot_row = a[col].clone();
            for (entry, pivot) in a[row][col..k].iter_mut().zip(&pivot_row[col..k]) {
                *entry -= factor * pivot;
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = vec![0.0; k];
    for row in (0..k).rev() {
        let mut sum = b[row];
        for col in (row + 1)..k {
            sum -= a[row][col] * x[col];
        }
        x[row] = sum / a[row][row];
    }
    x
}

/// One half-sweep: re-solve the factors of the target rows against the
/// fixed factors of their rated counterparts. Counterparts missing from
/// `fixed` (lost in an uncompensated failure) are skipped; a target with no
/// surviving counterparts keeps its `previous` factors, or zero.
fn solve_side(
    ratings: &[(u64, u64, f64)], // (target, counterpart, value)
    fixed: &dataflow::hash::FxHashMap<u64, Vec<f64>>,
    previous: &dataflow::hash::FxHashMap<u64, Vec<f64>>,
    rank: usize,
    lambda: f64,
) -> Vec<FactorRow> {
    use dataflow::hash::FxHashMap;
    let mut grouped: FxHashMap<u64, Vec<(u64, f64)>> = FxHashMap::default();
    for &(target, counterpart, value) in ratings {
        grouped.entry(target).or_default().push((counterpart, value));
    }
    let mut out: Vec<FactorRow> = grouped
        .into_iter()
        .map(|(target, observed)| {
            let mut gram = vec![vec![0.0; rank]; rank];
            let mut rhs = vec![0.0; rank];
            let mut used = 0usize;
            for (counterpart, value) in &observed {
                let Some(q) = fixed.get(counterpart) else { continue };
                used += 1;
                for r in 0..rank {
                    rhs[r] += value * q[r];
                    for c in 0..rank {
                        gram[r][c] += q[r] * q[c];
                    }
                }
            }
            if used == 0 {
                // All counterparts were lost: keep the previous factors.
                let kept = previous.get(&target).cloned().unwrap_or_else(|| vec![0.0; rank]);
                return (target, kept);
            }
            (target, solve_ridge(gram, rhs, lambda, used))
        })
        .collect();
    out.sort_by_key(|r| r.0);
    out
}

/// Compensation for ALS: reset lost factor rows to their deterministic
/// initial vectors.
pub struct FixFactors {
    num_nodes: u64,
    rank: usize,
    seed: u64,
    parallelism: usize,
}

impl FixFactors {
    /// Compensation over `num_nodes` factor rows.
    pub fn new(num_nodes: u64, rank: usize, seed: u64, parallelism: usize) -> Self {
        FixFactors { num_nodes, rank, seed, parallelism }
    }
}

impl BulkCompensation<FactorRow> for FixFactors {
    fn compensate(
        &mut self,
        state: &mut Partitions<FactorRow>,
        lost: &[PartitionId],
        _iteration: u32,
    ) {
        for (node, pid) in lost_keys(self.num_nodes, self.parallelism, lost) {
            state.partition_mut(pid).push((node, initial_factors(node, self.rank, self.seed)));
        }
    }

    fn name(&self) -> &str {
        "FixFactors"
    }
}

/// The regularised ALS objective (what a sweep provably never increases):
/// `Σ (r - p_u · q_i)² + λ Σ_u n_u ‖p_u‖² + λ Σ_i n_i ‖q_i‖²`
/// with the weighted-λ (ALS-WR) regularisation this implementation solves.
pub fn objective(ratings: &[Rating], users: &[FactorRow], items: &[FactorRow], lambda: f64) -> f64 {
    use dataflow::hash::FxHashMap;
    let user_map: FxHashMap<u64, &Vec<f64>> = users.iter().map(|(id, f)| (*id, f)).collect();
    let item_map: FxHashMap<u64, &Vec<f64>> = items.iter().map(|(id, f)| (*id, f)).collect();
    let mut user_counts: FxHashMap<u64, usize> = FxHashMap::default();
    let mut item_counts: FxHashMap<u64, usize> = FxHashMap::default();
    let mut error = 0.0;
    for r in ratings {
        *user_counts.entry(r.user).or_insert(0) += 1;
        *item_counts.entry(r.item).or_insert(0) += 1;
        let (Some(p), Some(q)) = (user_map.get(&r.user), item_map.get(&r.item)) else { continue };
        let predicted: f64 = p.iter().zip(q.iter()).map(|(a, b)| a * b).sum();
        error += (predicted - r.value).powi(2);
    }
    let mut penalty = 0.0;
    for (id, count) in user_counts {
        if let Some(p) = user_map.get(&id) {
            penalty += count as f64 * p.iter().map(|v| v * v).sum::<f64>();
        }
    }
    for (id, count) in item_counts {
        if let Some(q) = item_map.get(&id) {
            penalty += count as f64 * q.iter().map(|v| v * v).sum::<f64>();
        }
    }
    error + lambda * penalty
}

/// Root-mean-square error of a factor model over `ratings`.
pub fn rmse(ratings: &[Rating], users: &[FactorRow], items: &[FactorRow]) -> f64 {
    use dataflow::hash::FxHashMap;
    let users: FxHashMap<u64, &Vec<f64>> = users.iter().map(|(id, f)| (*id, f)).collect();
    let items: FxHashMap<u64, &Vec<f64>> = items.iter().map(|(id, f)| (*id, f)).collect();
    let mut error = 0.0;
    for r in ratings {
        let (Some(p), Some(q)) = (users.get(&r.user), items.get(&r.item)) else { continue };
        let predicted: f64 = p.iter().zip(q.iter()).map(|(a, b)| a * b).sum();
        error += (predicted - r.value).powi(2);
    }
    (error / ratings.len().max(1) as f64).sqrt()
}

/// Generate a synthetic low-rank rating matrix: ground-truth factors drawn
/// uniformly, `per_user` observed items per user, Gaussian-ish noise.
pub fn generate_ratings(
    num_users: u64,
    num_items: u64,
    per_user: usize,
    rank: usize,
    noise: f64,
    seed: u64,
) -> Vec<Rating> {
    let mut rng = StdRng::seed_from_u64(seed);
    let truth_user: Vec<Vec<f64>> =
        (0..num_users).map(|_| (0..rank).map(|_| rng.gen_range(0.2..1.0)).collect()).collect();
    let truth_item: Vec<Vec<f64>> =
        (0..num_items).map(|_| (0..rank).map(|_| rng.gen_range(0.2..1.0)).collect()).collect();
    let mut ratings = Vec::with_capacity(num_users as usize * per_user);
    for user in 0..num_users {
        for _ in 0..per_user {
            let item = rng.gen_range(0..num_items);
            let clean: f64 = truth_user[user as usize]
                .iter()
                .zip(&truth_item[item as usize])
                .map(|(a, b)| a * b)
                .sum();
            let jitter = (rng.gen::<f64>() + rng.gen::<f64>() + rng.gen::<f64>() - 1.5) * noise;
            ratings.push(Rating { user, item, value: clean + jitter });
        }
    }
    ratings
}

/// Run ALS over the given ratings.
///
/// # Panics
/// Panics when `ratings` is empty or `rank` is zero.
pub fn run(ratings: &[Rating], config: &AlsConfig) -> Result<AlsResult> {
    assert!(!ratings.is_empty(), "ALS needs ratings");
    assert!(config.rank > 0, "rank must be positive");
    let num_users = ratings.iter().map(|r| r.user).max().unwrap_or(0) + 1;
    let num_items = ratings.iter().map(|r| r.item).max().unwrap_or(0) + 1;
    let num_nodes = num_users + num_items;
    let rank = config.rank;
    let lambda = config.lambda;

    let env = crate::common::environment(config.parallelism, &config.ft);
    let initial: Vec<FactorRow> =
        (0..num_nodes).map(|node| (node, initial_factors(node, rank, config.seed))).collect();
    let factors0 = env.from_keyed_vec(initial, |r| r.0);
    // Ratings as (user_node, item_node, value) with shifted item ids,
    // co-partitioned once per half-sweep direction: every user's ratings
    // live in a single partition of `by_user`, every item's in a single
    // partition of `by_item` — so each least-squares solve sees *all* the
    // observations of its row and a sweep is exact ALS.
    let triples: Vec<(u64, u64, f64)> =
        ratings.iter().map(|r| (r.user, num_users + r.item, r.value)).collect();
    let swapped: Vec<(u64, u64, f64)> = triples.iter().map(|&(u, i, v)| (i, u, v)).collect();
    let by_user_ds = env.from_keyed_vec(triples, |t| t.0);
    let by_item_ds = env.from_keyed_vec(swapped, |t| t.0);

    let mut iteration = BulkIteration::new(&factors0, config.sweeps);
    iteration.set_fault_handler(common::bulk_handler(
        &config.ft,
        FixFactors::new(num_nodes, rank, config.seed, config.parallelism),
    )?);
    iteration.set_failure_source(config.ft.scenario.to_source());
    // Convergence norm: L1 movement of the factor matrices; any row that
    // moved at all counts as changed (ALS sweeps touch every row).
    iteration.set_convergence_probe(common::keyed_bulk_probe(
        |f: &FactorRow| f.0,
        |old, new| match old {
            Some(o) => new.1.iter().zip(&o.1).map(|(a, b)| (a - b).abs()).sum(),
            None => new.1.iter().map(|a| a.abs()).sum(),
        },
        0.0,
    ));

    // Observer: training RMSE + regularised objective per sweep.
    let observer_ratings = ratings.to_vec();
    iteration.set_observer(move |_iter, state: &Partitions<FactorRow>, stats| {
        let mut users = Vec::new();
        let mut items = Vec::new();
        for (node, factors) in state.iter_records() {
            if *node < num_users {
                users.push((*node, factors.clone()));
            } else {
                items.push((*node - num_users, factors.clone()));
            }
        }
        stats.gauges.insert("rmse".into(), rmse(&observer_ratings, &users, &items));
        stats
            .gauges
            .insert("objective".into(), objective(&observer_ratings, &users, &items, lambda));
    });

    let by_user = iteration.import(&by_user_ds);
    let by_item = iteration.import(&by_item_ds);
    let factors = iteration.state();

    // One full ALS sweep per superstep. The per-row least-squares solves
    // need the whole fixed side, so each half-sweep broadcasts the factor
    // matrix to the rating partitions — exactly how distributed ALS
    // implementations replicate the smaller factor matrix.
    let new_users = by_user
        .map_partition(
            "group-user-ratings",
            |_, records: &[(u64, u64, f64)]| vec![records.to_vec()],
        )
        .map_with_broadcast(
            "solve-users",
            &factors,
            move |partition_ratings: &Vec<(u64, u64, f64)>, all_factors: &[FactorRow]| {
                use dataflow::hash::FxHashMap;
                let fixed: FxHashMap<u64, Vec<f64>> = all_factors.iter().cloned().collect();
                solve_side(partition_ratings, &fixed, &fixed, rank, lambda)
            },
        )
        .flat_map("emit-user-rows", |rows: &Vec<FactorRow>| rows.clone());
    // Half-sweep 2: items against the *new* user factors.
    let new_items = by_item
        .map_partition(
            "group-item-ratings",
            |_, records: &[(u64, u64, f64)]| vec![records.to_vec()],
        )
        .map_with_broadcast(
            "solve-items",
            &new_users,
            move |partition_ratings: &Vec<(u64, u64, f64)>, new_users: &[FactorRow]| {
                use dataflow::hash::FxHashMap;
                let fixed: FxHashMap<u64, Vec<f64>> = new_users.iter().cloned().collect();
                solve_side(partition_ratings, &fixed, &FxHashMap::default(), rank, lambda)
            },
        )
        .flat_map("emit-item-rows", |rows: &Vec<FactorRow>| rows.clone());
    let next = new_users
        .union("collect-rows", &new_items)
        .measured(common::MESSAGES)
        // Nodes without any rating keep their previous factors.
        .co_group(
            "keep-unrated",
            &factors,
            |n: &FactorRow| n.0,
            |o: &FactorRow| o.0,
            |&node, new, old| {
                let factors = new
                    .first()
                    .map(|(_, f)| f.clone())
                    .or_else(|| old.first().map(|(_, f)| f.clone()))
                    .expect("node present on one side");
                vec![(node, factors)]
            },
        );
    let (result, handle) = iteration.close(next);

    let rows = result.collect()?;
    let stats = handle.take().expect("iteration executed");
    let mut user_factors = Vec::new();
    let mut item_factors = Vec::new();
    for (node, factors) in rows {
        if node < num_users {
            user_factors.push((node, factors));
        } else {
            item_factors.push((node - num_users, factors));
        }
    }
    user_factors.sort_by_key(|r| r.0);
    item_factors.sort_by_key(|r| r.0);
    let rmse = rmse(ratings, &user_factors, &item_factors);
    Ok(AlsResult { user_factors, item_factors, rmse, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use recovery::scenario::FailureScenario;

    fn training_data() -> Vec<Rating> {
        generate_ratings(40, 30, 12, 4, 0.02, 11)
    }

    #[test]
    fn factorizes_synthetic_low_rank_data() {
        let ratings = training_data();
        let result = run(&ratings, &AlsConfig::default()).unwrap();
        assert!(result.rmse < 0.1, "rmse {}", result.rmse);
        assert!(result.stats.converged);
        assert_eq!(result.user_factors.len(), 40);
        assert_eq!(result.item_factors.len(), 30);
    }

    #[test]
    fn objective_decreases_monotonically_without_failures() {
        // A full ALS sweep never increases the *regularised* objective (the
        // raw RMSE may tick up slightly as regularisation trades fit for
        // smaller norms).
        let ratings = training_data();
        let result = run(&ratings, &AlsConfig::default()).unwrap();
        let series = result.stats.gauge_series("objective");
        for window in series.windows(2) {
            assert!(
                window[1] <= window[0] + 1e-9,
                "ALS sweeps must not increase the objective: {series:?}"
            );
        }
    }

    #[test]
    fn optimistic_recovery_reaches_comparable_quality() {
        let ratings = training_data();
        let failure_free = run(&ratings, &AlsConfig::default()).unwrap();
        let config = AlsConfig {
            sweeps: 20,
            ft: FtConfig::optimistic(FailureScenario::none().fail_at(5, &[0, 1])),
            ..Default::default()
        };
        let result = run(&ratings, &config).unwrap();
        assert_eq!(result.stats.failures().count(), 1);
        assert!(
            result.rmse < 2.0 * failure_free.rmse.max(0.02),
            "recovered rmse {} vs failure-free {}",
            result.rmse,
            failure_free.rmse
        );
        // The RMSE gauge spikes at the failure, then decays again.
        let series = result.stats.gauge_series("rmse");
        assert!(series[5] > series[4], "compensation must disturb the model: {series:?}");
        assert!(series.last().unwrap() < &series[5]);
    }

    #[test]
    fn checkpoint_recovery_matches_failure_free_exactly() {
        let ratings = training_data();
        let failure_free = run(&ratings, &AlsConfig::default()).unwrap();
        let config = AlsConfig {
            ft: FtConfig::checkpoint(1, FailureScenario::none().fail_at(4, &[1])),
            ..Default::default()
        };
        let result = run(&ratings, &config).unwrap();
        assert!((result.rmse - failure_free.rmse).abs() < 1e-9);
    }

    #[test]
    fn initial_factors_are_deterministic_and_distinct() {
        assert_eq!(initial_factors(3, 4, 9), initial_factors(3, 4, 9));
        assert_ne!(initial_factors(3, 4, 9), initial_factors(4, 4, 9));
        assert_eq!(initial_factors(0, 6, 1).len(), 6);
    }

    #[test]
    fn ridge_solver_solves_known_system() {
        // (A + 0) x = b with A = [[2, 0], [0, 4]], b = [2, 8] -> x = [1, 2].
        let x = solve_ridge(vec![vec![2.0, 0.0], vec![0.0, 4.0]], vec![2.0, 8.0], 0.0, 0);
        assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
        // Regularisation pulls the solution towards zero.
        let regularized =
            solve_ridge(vec![vec![2.0, 0.0], vec![0.0, 4.0]], vec![2.0, 8.0], 10.0, 1);
        assert!(regularized[0] < 1.0 && regularized[1] < 2.0);
    }

    #[test]
    fn generator_is_seeded() {
        assert_eq!(training_data(), training_data());
    }
}
