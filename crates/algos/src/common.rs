//! Shared experiment plumbing: fault-tolerance configuration and the
//! translation from a [`Strategy`] descriptor to concrete engine handlers.

use std::hash::Hash;

use dataflow::codec::Codec;
use dataflow::dataset::{Data, Partitions};
use dataflow::error::Result;
use dataflow::ft::{BulkFaultHandler, DeltaFaultHandler, RestartHandler, SolutionSets};
use dataflow::hash::FxHashMap;
use dataflow::iterate::ConvergenceMeasure;
use dataflow::partition::hash_partition;
use recovery::async_snapshot::{AsyncSnapshotBulkHandler, AsyncSnapshotDeltaHandler};
use recovery::checkpoint::{
    CheckpointBulkHandler, CheckpointDeltaHandler, CostModel, DiskStore, MemoryStore,
};
use recovery::compensation::{BulkCompensation, DeltaCompensation};
use recovery::ignore::IgnoreHandler;
use recovery::incremental::IncrementalDeltaHandler;
use recovery::optimistic::{OptimisticBulkHandler, OptimisticDeltaHandler};
use recovery::scenario::FailureScenario;
use recovery::strategy::Strategy;
use telemetry::SinkHandle;

/// Fault-tolerance configuration of one algorithm run.
#[derive(Debug, Clone)]
pub struct FtConfig {
    /// Which recovery strategy to install.
    pub strategy: Strategy,
    /// When failures strike.
    pub scenario: FailureScenario,
    /// Stable-storage cost model for checkpoint strategies.
    pub checkpoint_cost: CostModel,
    /// Checkpoint to an on-disk store instead of the in-memory one.
    pub checkpoint_on_disk: bool,
    /// Telemetry sink shared by the engine and the recovery handlers (the
    /// disabled no-op handle by default).
    pub telemetry: SinkHandle,
    /// How threaded partition work is dispatched: the persistent worker
    /// pool (the engine default) or per-invocation scoped threads (the
    /// `worker_pool_guard` benchmark's comparison baseline).
    pub dispatch: dataflow::config::DispatchMode,
}

impl Default for FtConfig {
    fn default() -> Self {
        FtConfig {
            strategy: Strategy::Optimistic,
            scenario: FailureScenario::none(),
            checkpoint_cost: CostModel::instant(),
            checkpoint_on_disk: false,
            telemetry: SinkHandle::disabled(),
            dispatch: dataflow::config::DispatchMode::Pool,
        }
    }
}

impl FtConfig {
    /// Optimistic recovery under the given failure scenario.
    pub fn optimistic(scenario: FailureScenario) -> Self {
        FtConfig { scenario, ..Default::default() }
    }

    /// Rollback recovery with the given checkpoint interval.
    pub fn checkpoint(interval: u32, scenario: FailureScenario) -> Self {
        FtConfig { strategy: Strategy::Checkpoint { interval }, scenario, ..Default::default() }
    }

    /// Restart-from-scratch under the given scenario.
    pub fn restart(scenario: FailureScenario) -> Self {
        FtConfig { strategy: Strategy::Restart, scenario, ..Default::default() }
    }

    /// Ablation: ignore failures (converges to wrong results).
    pub fn ignore(scenario: FailureScenario) -> Self {
        FtConfig { strategy: Strategy::Ignore, scenario, ..Default::default() }
    }

    /// Builder-style cost-model override.
    pub fn with_checkpoint_cost(mut self, model: CostModel) -> Self {
        self.checkpoint_cost = model;
        self
    }

    /// Builder-style on-disk checkpointing toggle.
    pub fn with_disk_checkpoints(mut self, on_disk: bool) -> Self {
        self.checkpoint_on_disk = on_disk;
        self
    }

    /// Builder-style telemetry sink: the algorithm runner installs it on
    /// both the engine environment and the recovery handlers, so engine
    /// events and strategy detail events land in one journal.
    pub fn with_telemetry(mut self, telemetry: SinkHandle) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Builder-style dispatch-mode override for the engine environment.
    pub fn with_dispatch(mut self, dispatch: dataflow::config::DispatchMode) -> Self {
        self.dispatch = dispatch;
        self
    }

    /// Combined label for reports, e.g. `"optimistic/fail@3[1]"`.
    pub fn label(&self) -> String {
        format!("{}/{}", self.strategy.label(), self.scenario.label())
    }
}

/// Engine environment for an algorithm run: the requested parallelism plus
/// the fault-tolerance config's telemetry sink, so engine spans and journal
/// events land in the same sink as the recovery handlers' detail events.
pub fn environment(parallelism: usize, ft: &FtConfig) -> dataflow::api::Environment {
    dataflow::api::Environment::with_config(
        dataflow::config::EnvConfig::new(parallelism)
            .with_telemetry(ft.telemetry.clone())
            .with_dispatch(ft.dispatch),
    )
}

/// Build the bulk-iteration fault handler for a strategy, wiring in the
/// algorithm's compensation function where the strategy calls for one.
pub fn bulk_handler<T, C>(ft: &FtConfig, compensation: C) -> Result<Box<dyn BulkFaultHandler<T>>>
where
    T: Data + Codec,
    C: BulkCompensation<T> + 'static,
{
    Ok(match ft.strategy {
        Strategy::Optimistic => {
            Box::new(OptimisticBulkHandler::new(compensation).with_telemetry(ft.telemetry.clone()))
        }
        Strategy::Checkpoint { interval } => {
            if ft.checkpoint_on_disk {
                let store = DiskStore::temp()?.with_cost_model(ft.checkpoint_cost);
                Box::new(
                    CheckpointBulkHandler::<T, _>::new(store, interval)
                        .with_telemetry(ft.telemetry.clone()),
                )
            } else {
                let store = MemoryStore::with_cost_model(ft.checkpoint_cost);
                Box::new(
                    CheckpointBulkHandler::<T, _>::new(store, interval)
                        .with_telemetry(ft.telemetry.clone()),
                )
            }
        }
        Strategy::IncrementalCheckpoint { .. } => {
            return Err(dataflow::error::EngineError::Recovery(
                "incremental checkpointing requires a delta iteration; use a bulk-capable \
                 strategy (optimistic / checkpoint / restart) here"
                    .into(),
            ))
        }
        Strategy::AsyncSnapshot { interval } => {
            if ft.checkpoint_on_disk {
                let store = DiskStore::temp()?.with_cost_model(ft.checkpoint_cost);
                Box::new(
                    AsyncSnapshotBulkHandler::<T, _>::new(store, interval)
                        .with_telemetry(ft.telemetry.clone()),
                )
            } else {
                let store = MemoryStore::with_cost_model(ft.checkpoint_cost);
                Box::new(
                    AsyncSnapshotBulkHandler::<T, _>::new(store, interval)
                        .with_telemetry(ft.telemetry.clone()),
                )
            }
        }
        Strategy::Restart => Box::new(RestartHandler),
        Strategy::Ignore => Box::new(IgnoreHandler),
    })
}

/// Build the delta-iteration fault handler for a strategy.
pub fn delta_handler<K, V, W, C>(
    ft: &FtConfig,
    compensation: C,
) -> Result<Box<dyn DeltaFaultHandler<K, V, W>>>
where
    K: Data + Codec + std::hash::Hash + Eq,
    V: Data + Codec + PartialEq,
    W: Data + Codec,
    C: DeltaCompensation<K, V, W> + 'static,
{
    Ok(match ft.strategy {
        Strategy::Optimistic => {
            Box::new(OptimisticDeltaHandler::new(compensation).with_telemetry(ft.telemetry.clone()))
        }
        Strategy::Checkpoint { interval } => {
            if ft.checkpoint_on_disk {
                let store = DiskStore::temp()?.with_cost_model(ft.checkpoint_cost);
                Box::new(
                    CheckpointDeltaHandler::<K, V, W, _>::new(store, interval)
                        .with_telemetry(ft.telemetry.clone()),
                )
            } else {
                let store = MemoryStore::with_cost_model(ft.checkpoint_cost);
                Box::new(
                    CheckpointDeltaHandler::<K, V, W, _>::new(store, interval)
                        .with_telemetry(ft.telemetry.clone()),
                )
            }
        }
        Strategy::IncrementalCheckpoint { full_interval } => {
            if ft.checkpoint_on_disk {
                let store = DiskStore::temp()?.with_cost_model(ft.checkpoint_cost);
                Box::new(
                    IncrementalDeltaHandler::<K, V, W, _>::new(store, full_interval)
                        .with_telemetry(ft.telemetry.clone()),
                )
            } else {
                let store = MemoryStore::with_cost_model(ft.checkpoint_cost);
                Box::new(
                    IncrementalDeltaHandler::<K, V, W, _>::new(store, full_interval)
                        .with_telemetry(ft.telemetry.clone()),
                )
            }
        }
        Strategy::AsyncSnapshot { interval } => {
            if ft.checkpoint_on_disk {
                let store = DiskStore::temp()?.with_cost_model(ft.checkpoint_cost);
                Box::new(
                    AsyncSnapshotDeltaHandler::<K, V, W, _>::new(store, interval)
                        .with_telemetry(ft.telemetry.clone()),
                )
            } else {
                let store = MemoryStore::with_cost_model(ft.checkpoint_cost);
                Box::new(
                    AsyncSnapshotDeltaHandler::<K, V, W, _>::new(store, interval)
                        .with_telemetry(ft.telemetry.clone()),
                )
            }
        }
        Strategy::Restart => Box::new(RestartHandler),
        Strategy::Ignore => Box::new(IgnoreHandler),
    })
}

/// Build a convergence probe for bulk iterations over keyed records.
///
/// `diff` scores how far a record moved relative to its predecessor under
/// the same key (`None` when the key is new — e.g. after a restart); a
/// record counts as *changed* when its score exceeds `epsilon`, and the
/// summed scores become the sample's delta norm. Scores are accumulated
/// sequentially in partition-then-record order, so deterministic runs
/// produce bit-identical norms.
pub fn keyed_bulk_probe<T, K>(
    key_of: impl Fn(&T) -> K + 'static,
    diff: impl Fn(Option<&T>, &T) -> f64 + 'static,
    epsilon: f64,
) -> impl FnMut(&Partitions<T>, &Partitions<T>) -> ConvergenceMeasure
where
    T: Data,
    K: Hash + Eq,
{
    move |prev, next| {
        let mut old: FxHashMap<K, &T> = FxHashMap::default();
        for record in prev.iter_records() {
            old.insert(key_of(record), record);
        }
        let parts = next.as_parts();
        let mut changed_per_partition = vec![0u64; parts.len()];
        let mut norm = 0.0f64;
        for (pid, part) in parts.iter().enumerate() {
            for record in part {
                let score = diff(old.get(&key_of(record)).copied(), record);
                norm += score;
                if score > epsilon {
                    changed_per_partition[pid] += 1;
                }
            }
        }
        ConvergenceMeasure { changed_per_partition, delta_norm: Some(norm) }
    }
}

/// The probe signature delta iterations accept: pre-apply solution sets
/// plus the superstep's delta, returning the optional aggregate norm.
pub type DeltaNormProbe<K, V> = dyn FnMut(&SolutionSets<K, V>, &Partitions<(K, V)>) -> Option<f64>;

/// Build a norm probe for delta iterations: sums `diff(old, new)` over the
/// delta's upserts, looking the old value up in the pre-apply solution sets
/// (`None` when the key has no entry — e.g. on a failure-cleared
/// partition). Accumulation order is the delta's partition-then-record
/// order, so deterministic runs produce bit-identical norms.
#[allow(clippy::type_complexity)]
pub fn delta_norm_probe<K, V>(
    diff: impl Fn(Option<&V>, &V) -> f64 + 'static,
) -> impl FnMut(&SolutionSets<K, V>, &Partitions<(K, V)>) -> Option<f64>
where
    K: Data + Hash + Eq,
    V: Data,
{
    move |solution, delta| {
        let parallelism = solution.len();
        let mut norm = 0.0f64;
        for (k, v) in delta.iter_records() {
            let pid = hash_partition(k, parallelism);
            norm += diff(solution[pid].get(k), v);
        }
        Some(norm)
    }
}

/// Counter name for the paper's "messages per iteration" plot.
pub const MESSAGES: &str = "messages";
/// Gauge: vertices/records that already match the precomputed exact result.
pub const CONVERGED: &str = "converged";
/// Gauge: number of distinct labels (the "colours" of the CC demo GUI).
pub const DISTINCT_LABELS: &str = "distinct_labels";
/// Gauge: L1 norm between consecutive iteration states (PageRank plot ii).
pub const L1_DIFF: &str = "l1_diff";
/// Gauge: sum of all ranks (the invariant `FixRanks` maintains).
pub const RANK_SUM: &str = "rank_sum";

#[cfg(test)]
mod tests {
    use super::*;
    use dataflow::dataset::Partitions;
    use dataflow::ft::BulkRecoveryAction;

    fn noop_comp(_s: &mut Partitions<u64>, _l: &[usize], _i: u32) {}

    #[test]
    fn strategy_dispatch_builds_matching_handlers() {
        let mut state = Partitions::round_robin(vec![1u64, 2], 2);

        let ft = FtConfig::optimistic(FailureScenario::none());
        let mut h = bulk_handler::<u64, _>(&ft, noop_comp).unwrap();
        assert!(matches!(
            h.on_failure(0, &[0], &mut state).unwrap(),
            BulkRecoveryAction::Compensated
        ));

        let ft = FtConfig::restart(FailureScenario::none());
        let mut h = bulk_handler::<u64, _>(&ft, noop_comp).unwrap();
        assert!(matches!(h.on_failure(0, &[0], &mut state).unwrap(), BulkRecoveryAction::Restart));

        let ft = FtConfig::ignore(FailureScenario::none());
        let mut h = bulk_handler::<u64, _>(&ft, noop_comp).unwrap();
        assert!(matches!(h.on_failure(0, &[0], &mut state).unwrap(), BulkRecoveryAction::Ignore));

        let ft = FtConfig::checkpoint(2, FailureScenario::none());
        let mut h = bulk_handler::<u64, _>(&ft, noop_comp).unwrap();
        assert!(h.after_superstep(0, &state).unwrap().is_some());
        assert!(h.after_superstep(1, &state).unwrap().is_none());
        assert!(matches!(
            h.on_failure(1, &[0], &mut state).unwrap(),
            BulkRecoveryAction::Restored { iteration: 0, .. }
        ));

        // Async snapshots spread chunk writes: with 2 partitions the epoch
        // at iteration 0 completes at iteration 1 and is the restore point.
        let ft = FtConfig {
            strategy: Strategy::AsyncSnapshot { interval: 4 },
            ..FtConfig::optimistic(FailureScenario::none())
        };
        let mut h = bulk_handler::<u64, _>(&ft, noop_comp).unwrap();
        assert!(h.after_superstep(0, &state).unwrap().is_some());
        assert!(h.after_superstep(1, &state).unwrap().is_some());
        assert!(matches!(
            h.on_failure(2, &[0], &mut state).unwrap(),
            BulkRecoveryAction::Restored { iteration: 0, .. }
        ));
    }

    #[test]
    fn disk_checkpoint_handler_roundtrips() {
        let ft = FtConfig::checkpoint(1, FailureScenario::none()).with_disk_checkpoints(true);
        let mut h = bulk_handler::<u64, _>(&ft, noop_comp).unwrap();
        let state = Partitions::round_robin(vec![9u64, 8, 7], 3);
        assert!(h.after_superstep(0, &state).unwrap().is_some());
        let mut broken = state.clone();
        broken.clear_partition(1);
        match h.on_failure(1, &[1], &mut broken).unwrap() {
            BulkRecoveryAction::Restored { state: restored, .. } => assert_eq!(restored, state),
            _ => panic!("expected rollback"),
        }
    }

    #[test]
    fn labels_compose() {
        let ft = FtConfig::checkpoint(5, FailureScenario::none().fail_at(2, &[0]));
        assert_eq!(ft.label(), "checkpoint(5)/fail@2[0]");
    }
}
