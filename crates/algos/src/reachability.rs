//! Multi-source reachability as a delta iteration — the simplest member of
//! the paper's "robust fixpoint" class: a monotone boolean fixpoint.
//!
//! Given a set of seed vertices, compute which vertices can be reached from
//! *any* seed. Reached-ness only ever flips from false to true, so — like
//! Connected Components — resetting lost vertices to their initial value
//! (reached iff seed) and re-seeding propagation recovers the exact result.
//! Used e.g. for garbage-collection-style liveness over object graphs and
//! influence spread over social networks.

use std::sync::Arc;

use dataflow::dataset::Partitions;
use dataflow::error::Result;
use dataflow::ft::SolutionSets;
use dataflow::hash::FxHashSet;
use dataflow::partition::{hash_partition, PartitionId};
use dataflow::prelude::DeltaIteration;
use dataflow::stats::RunStats;
use graphs::{Graph, VertexId};
use recovery::compensation::{lost_keys, DeltaCompensation};

use crate::common::{self, FtConfig};

/// A `(vertex, reached)` record.
pub type Reach = (VertexId, bool);

/// Configuration of a reachability run.
#[derive(Debug, Clone)]
pub struct ReachConfig {
    /// Number of partitions / simulated workers.
    pub parallelism: usize,
    /// Iteration cap.
    pub max_iterations: u32,
    /// The seed vertices.
    pub seeds: Vec<VertexId>,
    /// Recovery strategy and failure scenario.
    pub ft: FtConfig,
    /// Compare against a BFS reference.
    pub track_truth: bool,
}

impl Default for ReachConfig {
    fn default() -> Self {
        ReachConfig {
            parallelism: 4,
            max_iterations: 200,
            seeds: vec![0],
            ft: FtConfig::default(),
            track_truth: true,
        }
    }
}

/// Result of a reachability run.
#[derive(Debug, Clone)]
pub struct ReachResult {
    /// One `(vertex, reached)` entry per vertex, sorted by vertex id.
    pub reached: Vec<Reach>,
    /// Number of reached vertices.
    pub num_reached: usize,
    /// `Some(true)` when the result matches the BFS reference.
    pub correct: Option<bool>,
    /// Per-superstep engine statistics.
    pub stats: RunStats,
}

/// Exact reachability by multi-source BFS.
pub fn bfs_reachability(graph: &Graph, seeds: &[VertexId]) -> Vec<bool> {
    let mut reached = vec![false; graph.num_vertices()];
    let mut queue: std::collections::VecDeque<VertexId> = seeds.iter().copied().collect();
    for &s in seeds {
        reached[s as usize] = true;
    }
    while let Some(v) = queue.pop_front() {
        for &u in graph.neighbors(v) {
            if !reached[u as usize] {
                reached[u as usize] = true;
                queue.push_back(u);
            }
        }
    }
    reached
}

/// Compensation for reachability: reset lost vertices to their seed status
/// and let the reached survivors on the boundary re-propagate.
pub struct FixReachability {
    adjacency: Arc<Vec<Vec<VertexId>>>,
    seeds: FxHashSet<VertexId>,
    parallelism: usize,
}

impl FixReachability {
    /// Compensation over the given graph and seed set.
    pub fn new(graph: &Graph, seeds: &[VertexId], parallelism: usize) -> Self {
        FixReachability {
            adjacency: Arc::new(graph.adjacency_rows().into_iter().map(|(_, ns)| ns).collect()),
            seeds: seeds.iter().copied().collect(),
            parallelism,
        }
    }
}

impl DeltaCompensation<VertexId, bool, Reach> for FixReachability {
    fn compensate(
        &mut self,
        solution: &mut SolutionSets<VertexId, bool>,
        workset: &mut Partitions<Reach>,
        lost: &[PartitionId],
        _iteration: u32,
    ) {
        let lost_set: FxHashSet<PartitionId> = lost.iter().copied().collect();
        let mut resenders: FxHashSet<VertexId> = FxHashSet::default();
        for (v, pid) in lost_keys(self.adjacency.len() as u64, self.parallelism, lost) {
            let initially_reached = self.seeds.contains(&v);
            solution[pid].insert(v, initially_reached);
            if initially_reached {
                workset.partition_mut(pid).push((v, true));
            }
            for &u in &self.adjacency[v as usize] {
                if !lost_set.contains(&hash_partition(&u, self.parallelism)) {
                    resenders.insert(u);
                }
            }
        }
        let mut resenders: Vec<VertexId> = resenders.into_iter().collect();
        resenders.sort_unstable();
        for u in resenders {
            let pid = hash_partition(&u, self.parallelism);
            if solution[pid].get(&u) == Some(&true) {
                workset.partition_mut(pid).push((u, true));
            }
        }
    }

    fn name(&self) -> &str {
        "FixReachability"
    }
}

/// Run multi-source reachability over an undirected graph.
///
/// # Panics
/// Panics when a seed vertex is out of range.
pub fn run(graph: &Graph, config: &ReachConfig) -> Result<ReachResult> {
    for &s in &config.seeds {
        assert!((s as usize) < graph.num_vertices(), "seed {s} out of range");
    }
    let env = crate::common::environment(config.parallelism, &config.ft);
    let seeds: FxHashSet<VertexId> = config.seeds.iter().copied().collect();
    let initial: Vec<Reach> = graph.vertices().map(|v| (v, seeds.contains(&v))).collect();
    let workset0: Vec<Reach> = config.seeds.iter().map(|&s| (s, true)).collect();
    let solution = env.from_keyed_vec(initial, |r| r.0);
    let workset = env.from_keyed_vec(workset0, |r| r.0);
    let edges: Vec<(VertexId, VertexId)> = graph.directed_edges().collect();
    let edges_ds = env.from_keyed_vec(edges, |e| e.0);

    let mut iteration = DeltaIteration::new(&solution, &workset, config.max_iterations);
    iteration.set_fault_handler(common::delta_handler(
        &config.ft,
        FixReachability::new(graph, &config.seeds, config.parallelism),
    )?);
    iteration.set_failure_source(config.ft.scenario.to_source());
    // Convergence norm: vertices flipped to reached this superstep (each
    // upsert is exactly one unreached-to-reached transition).
    iteration.set_norm_probe(common::delta_norm_probe(|_old: Option<&bool>, _new| 1.0));
    if config.track_truth {
        let truth = bfs_reachability(graph, &config.seeds);
        iteration.set_observer(
            move |_iter, solution: &SolutionSets<VertexId, bool>, _ws, stats| {
                let converged = solution
                    .iter()
                    .flat_map(|set| set.iter())
                    .filter(|(&v, &reached)| truth[v as usize] == reached)
                    .count();
                stats.gauges.insert(common::CONVERGED.into(), converged as f64);
            },
        );
    }

    let edges_in = iteration.import(&edges_ds);
    // Reached vertices notify their neighbours...
    let candidates = iteration
        .workset()
        .join("reach-neighbors", &edges_in, |w: &Reach| w.0, |e| e.0, |_, e| (e.1, true))
        .measured(common::MESSAGES)
        .distinct_by("dedupe-notifications", |c: &Reach| c.0);
    // ...and a vertex flips exactly once, from unreached to reached.
    let updates = candidates
        .join(
            "reach-update",
            &iteration.solution(),
            |c| c.0,
            |s: &Reach| s.0,
            |c, s| if !s.1 { Some((c.0, true)) } else { None },
        )
        .flat_map("newly-reached", |u: &Option<Reach>| u.iter().copied().collect());
    let (result, handle) = iteration.close(updates.clone(), updates);

    let mut reached = result.collect()?;
    reached.sort_unstable();
    let stats = handle.take().expect("iteration executed");
    let num_reached = reached.iter().filter(|&&(_, r)| r).count();
    let correct = config.track_truth.then(|| {
        let truth = bfs_reachability(graph, &config.seeds);
        reached.len() == truth.len() && reached.iter().all(|&(v, r)| truth[v as usize] == r)
    });
    Ok(ReachResult { reached, num_reached, correct, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::generators;
    use recovery::scenario::FailureScenario;
    use recovery::strategy::Strategy;

    #[test]
    fn single_seed_covers_its_component_only() {
        let graph = generators::disjoint_union(&[generators::path(5), generators::ring(4)]);
        let result = run(&graph, &ReachConfig::default()).unwrap();
        assert_eq!(result.correct, Some(true));
        assert_eq!(result.num_reached, 5);
        for &(v, r) in &result.reached {
            assert_eq!(r, v < 5, "vertex {v}");
        }
    }

    #[test]
    fn multiple_seeds_union_their_components() {
        let graph = generators::disjoint_union(&[generators::path(5), generators::ring(4)]);
        let config = ReachConfig { seeds: vec![0, 7], ..Default::default() };
        let result = run(&graph, &config).unwrap();
        assert_eq!(result.correct, Some(true));
        assert_eq!(result.num_reached, 9);
    }

    #[test]
    fn optimistic_recovery_is_exact() {
        let graph = generators::grid(10, 10);
        let config = ReachConfig {
            ft: FtConfig::optimistic(FailureScenario::none().fail_at(2, &[0]).fail_at(5, &[1, 3])),
            ..Default::default()
        };
        let result = run(&graph, &config).unwrap();
        assert_eq!(result.correct, Some(true));
        assert_eq!(result.num_reached, 100);
        assert_eq!(result.stats.failures().count(), 2);
    }

    #[test]
    fn incremental_checkpointing_works_for_reachability() {
        let graph = generators::grid(8, 8);
        let config = ReachConfig {
            ft: FtConfig {
                strategy: Strategy::IncrementalCheckpoint { full_interval: 4 },
                scenario: FailureScenario::none().fail_at(6, &[1]),
                ..Default::default()
            },
            ..Default::default()
        };
        let result = run(&graph, &config).unwrap();
        assert_eq!(result.correct, Some(true));
        // Diffs were checkpointed every superstep.
        assert!(result.stats.iterations.iter().all(|i| i.checkpoint_bytes.is_some()));
    }

    #[test]
    fn ignoring_failures_loses_reached_flags() {
        let graph = generators::path(32);
        let config = ReachConfig {
            ft: FtConfig::ignore(FailureScenario::none().fail_at(20, &[0, 1, 2])),
            ..Default::default()
        };
        let result = run(&graph, &config).unwrap();
        assert_eq!(result.correct, Some(false));
        assert!(result.reached.len() < 32);
    }

    #[test]
    fn bfs_reference_handles_empty_seed_component() {
        let graph = generators::disjoint_union(&[generators::path(3), generators::path(3)]);
        let truth = bfs_reachability(&graph, &[4]);
        assert_eq!(truth, vec![false, false, false, true, true, true]);
    }
}
