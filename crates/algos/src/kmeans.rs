//! k-means clustering (Lloyd's algorithm) as a bulk iteration — an
//! extension algorithm demonstrating optimistic recovery beyond graphs.
//!
//! The iteration state is the set of centroids, partitioned by centroid id.
//! Every superstep each point is assigned to its nearest centroid, cluster
//! sums are reduced, and centroids move to their cluster means; the
//! iteration stops once no centroid moves by more than `epsilon`.
//!
//! **Compensation (`FixCentroids`)**: a failure destroys the centroids
//! hashed to the lost partitions. Lloyd's algorithm converges from *any*
//! centroid configuration (the objective is non-increasing), so the
//! compensation re-seeds every lost centroid deterministically near the
//! global point mean, slightly offset per centroid id so re-seeded
//! centroids don't coincide.

use dataflow::dataset::Partitions;
use dataflow::error::Result;
use dataflow::partition::PartitionId;
use dataflow::prelude::BulkIteration;
use dataflow::stats::RunStats;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use recovery::compensation::{lost_keys, BulkCompensation};

use crate::common::{self, FtConfig};

/// A point in the plane.
pub type Point = (f64, f64);

/// A centroid record: `(centroid id, x, y)`.
pub type Centroid = (u64, f64, f64);

/// Configuration of a k-means run.
#[derive(Debug, Clone)]
pub struct KmConfig {
    /// Number of partitions / simulated workers.
    pub parallelism: usize,
    /// Iteration cap.
    pub max_iterations: u32,
    /// Number of clusters.
    pub k: usize,
    /// Stop once no centroid moves farther than this (Euclidean).
    pub epsilon: f64,
    /// Recovery strategy and failure scenario.
    pub ft: FtConfig,
}

impl Default for KmConfig {
    fn default() -> Self {
        KmConfig {
            parallelism: 4,
            max_iterations: 100,
            k: 4,
            epsilon: 1e-6,
            ft: FtConfig::default(),
        }
    }
}

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KmResult {
    /// Final centroids, sorted by id. Always exactly `k` of them.
    pub centroids: Vec<Centroid>,
    /// Sum of squared distances of every point to its nearest centroid.
    pub objective: f64,
    /// Per-superstep engine statistics.
    pub stats: RunStats,
}

/// Generate `k` Gaussian-ish blobs of `per_cluster` points each.
pub fn generate_blobs(k: usize, per_cluster: usize, spread: f64, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut points = Vec::with_capacity(k * per_cluster);
    for cluster in 0..k {
        let angle = cluster as f64 / k as f64 * std::f64::consts::TAU;
        let (cx, cy) = (10.0 * angle.cos(), 10.0 * angle.sin());
        for _ in 0..per_cluster {
            // Sum of three uniforms approximates a Gaussian well enough.
            let jitter = |rng: &mut StdRng| {
                (rng.gen::<f64>() + rng.gen::<f64>() + rng.gen::<f64>() - 1.5) * spread
            };
            points.push((cx + jitter(&mut rng), cy + jitter(&mut rng)));
        }
    }
    points
}

/// Sum of squared distances of each point to its nearest centroid.
pub fn objective(points: &[Point], centroids: &[Centroid]) -> f64 {
    points
        .iter()
        .map(|&(px, py)| {
            centroids
                .iter()
                .map(|&(_, cx, cy)| (px - cx).powi(2) + (py - cy).powi(2))
                .fold(f64::INFINITY, f64::min)
        })
        .sum()
}

/// Compensation for k-means: re-seed lost centroids near the global mean.
pub struct FixCentroids {
    mean: Point,
    extent: f64,
    k: usize,
    parallelism: usize,
}

impl FixCentroids {
    /// Compensation over the given point set.
    pub fn new(points: &[Point], k: usize, parallelism: usize) -> Self {
        assert!(!points.is_empty(), "k-means needs points");
        let n = points.len() as f64;
        let mean = (
            points.iter().map(|p| p.0).sum::<f64>() / n,
            points.iter().map(|p| p.1).sum::<f64>() / n,
        );
        let extent = points
            .iter()
            .map(|&(x, y)| (x - mean.0).abs().max((y - mean.1).abs()))
            .fold(0.0, f64::max)
            .max(1e-9);
        FixCentroids { mean, extent, k, parallelism }
    }
}

impl BulkCompensation<Centroid> for FixCentroids {
    fn compensate(
        &mut self,
        state: &mut Partitions<Centroid>,
        lost: &[PartitionId],
        _iteration: u32,
    ) {
        for (cid, pid) in lost_keys(self.k as u64, self.parallelism, lost) {
            // Deterministic re-seed: spiral the lost centroids around the
            // global mean so they start distinct and inside the data extent.
            let angle = (cid as f64 + 0.5) / self.k as f64 * std::f64::consts::TAU;
            let radius = 0.25 * self.extent * (1.0 + cid as f64 / self.k as f64);
            state.partition_mut(pid).push((
                cid,
                self.mean.0 + radius * angle.cos(),
                self.mean.1 + radius * angle.sin(),
            ));
        }
    }

    fn name(&self) -> &str {
        "FixCentroids"
    }
}

/// Run k-means over `points`.
///
/// # Panics
/// Panics when `k` is zero or there are fewer points than clusters.
pub fn run(points: &[Point], config: &KmConfig) -> Result<KmResult> {
    assert!(config.k > 0, "k must be positive");
    assert!(points.len() >= config.k, "need at least k points");
    let env = crate::common::environment(config.parallelism, &config.ft);
    let k = config.k;

    // Deterministic initial centroids: the first point of each of k equal
    // chunks of the input. (Taking the first k points is degenerate for
    // clustered inputs, where list neighbours are spatial neighbours.)
    let initial: Vec<Centroid> = (0..k)
        .map(|cid| {
            let (x, y) = points[cid * points.len() / k];
            (cid as u64, x, y)
        })
        .collect();
    let centroids0 = env.from_keyed_vec(initial, |c| c.0);
    let points_ds = env.from_vec(points.to_vec());

    let mut iteration = BulkIteration::new(&centroids0, config.max_iterations);
    iteration.set_fault_handler(common::bulk_handler(
        &config.ft,
        FixCentroids::new(points, k, config.parallelism),
    )?);
    iteration.set_failure_source(config.ft.scenario.to_source());
    // Convergence norm: summed centroid movement; a centroid moving more
    // than epsilon counts as changed (the termination criterion's metric).
    let probe_epsilon = config.epsilon;
    iteration.set_convergence_probe(common::keyed_bulk_probe(
        |c: &Centroid| c.0,
        |old, new| match old {
            Some(o) => ((new.1 - o.1).powi(2) + (new.2 - o.2).powi(2)).sqrt(),
            None => (new.1.powi(2) + new.2.powi(2)).sqrt(),
        },
        probe_epsilon,
    ));

    let points_in = iteration.import(&points_ds);
    let centroids = iteration.state();

    // Assign each point to its nearest centroid (centroids broadcast).
    let assignments = points_in
        .map_with_broadcast("assign-points", &centroids, |&(px, py): &Point, cents: &[Centroid]| {
            let mut best = (0u64, f64::INFINITY);
            for &(cid, cx, cy) in cents {
                let d = (px - cx).powi(2) + (py - cy).powi(2);
                if d < best.1 {
                    best = (cid, d);
                }
            }
            (best.0, px, py, 1u64)
        })
        .measured(common::MESSAGES);
    // Aggregate per-cluster sums and counts...
    let sums = assignments.reduce_by_key(
        "sum-clusters",
        |a: &(u64, f64, f64, u64)| a.0,
        |a, b| (a.0, a.1 + b.1, a.2 + b.2, a.3 + b.3),
    );
    // ...and move each centroid to its cluster mean. Centroids whose
    // cluster emptied stay where they are.
    let next = centroids.co_group(
        "recompute-centroids",
        &sums,
        |c: &Centroid| c.0,
        |s: &(u64, f64, f64, u64)| s.0,
        |&cid, old, sums| match (old.first(), sums.first()) {
            (_, Some(&(_, sx, sy, count))) if count > 0 => {
                vec![(cid, sx / count as f64, sy / count as f64)]
            }
            (Some(&stale), _) => vec![stale],
            _ => Vec::new(),
        },
    );
    // Terminate once no centroid moves.
    let epsilon2 = config.epsilon * config.epsilon;
    let moving = next
        .join(
            "compare-movement",
            &centroids,
            |a: &Centroid| a.0,
            |b: &Centroid| b.0,
            |a, b| (a.1 - b.1).powi(2) + (a.2 - b.2).powi(2),
        )
        .filter("still-moving", move |d2| *d2 > epsilon2);
    let (result, handle) = iteration.close_with_termination(next, moving);

    let mut centroids = result.collect()?;
    centroids.sort_by_key(|a| a.0);
    let stats = handle.take().expect("iteration executed");
    let objective = objective(points, &centroids);
    Ok(KmResult { centroids, objective, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use recovery::scenario::FailureScenario;

    fn blob_points() -> Vec<Point> {
        generate_blobs(4, 50, 0.5, 7)
    }

    #[test]
    fn recovers_the_four_blobs() {
        let points = blob_points();
        let result = run(&points, &KmConfig::default()).unwrap();
        assert_eq!(result.centroids.len(), 4);
        assert!(result.stats.converged);
        // Each blob centre lies at radius 10; every centroid should sit
        // near one of them.
        for &(_, x, y) in &result.centroids {
            let r = (x * x + y * y).sqrt();
            assert!((r - 10.0).abs() < 1.5, "centroid at radius {r}");
        }
    }

    #[test]
    fn objective_is_low_on_well_separated_blobs() {
        let points = blob_points();
        let result = run(&points, &KmConfig::default()).unwrap();
        // 200 points, spread 0.5: per-point squared error well below 1.
        let per_point = result.objective / points.len() as f64;
        assert!(per_point < 1.0, "objective {}", result.objective);
    }

    #[test]
    fn optimistic_recovery_still_finds_good_clusters() {
        let points = blob_points();
        let failure_free = run(&points, &KmConfig::default()).unwrap();
        let config = KmConfig {
            ft: FtConfig::optimistic(FailureScenario::none().fail_at(1, &[0, 1])),
            ..Default::default()
        };
        let result = run(&points, &config).unwrap();
        assert_eq!(result.centroids.len(), 4, "compensation must restore all centroids");
        assert!(result.stats.converged);
        assert_eq!(result.stats.failures().count(), 1);
        // Lloyd's converges to a local optimum; after re-seeding it must be
        // in the same ballpark as the failure-free optimum.
        assert!(
            result.objective < 10.0 * failure_free.objective.max(1.0),
            "objective {} vs failure-free {}",
            result.objective,
            failure_free.objective
        );
    }

    #[test]
    fn checkpoint_recovery_reproduces_failure_free_result() {
        let points = blob_points();
        let failure_free = run(&points, &KmConfig::default()).unwrap();
        let config = KmConfig {
            ft: FtConfig::checkpoint(1, FailureScenario::none().fail_at(1, &[0])),
            ..Default::default()
        };
        let result = run(&points, &config).unwrap();
        assert_eq!(result.stats.failures().count(), 1);
        // Rollback to the latest checkpoint replays the identical
        // deterministic computation.
        for (a, b) in result.centroids.iter().zip(&failure_free.centroids) {
            assert_eq!(a.0, b.0);
            assert!((a.1 - b.1).abs() < 1e-9 && (a.2 - b.2).abs() < 1e-9);
        }
    }

    #[test]
    fn generate_blobs_is_seeded() {
        assert_eq!(generate_blobs(3, 10, 1.0, 5), generate_blobs(3, 10, 1.0, 5));
        assert_eq!(generate_blobs(3, 10, 1.0, 5).len(), 30);
    }

    #[test]
    fn objective_of_perfect_centroids_is_zero() {
        let points = vec![(1.0, 1.0), (3.0, 3.0)];
        let centroids = vec![(0u64, 1.0, 1.0), (1u64, 3.0, 3.0)];
        assert_eq!(objective(&points, &centroids), 0.0);
    }
}
