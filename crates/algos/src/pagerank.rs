//! PageRank as a bulk iteration — the paper's Figure 1b.
//!
//! Every superstep: each vertex sends `rank / out-degree` to its neighbours
//! (*find-neighbors* join), every vertex sums its incoming contributions
//! (*recompute-ranks* reduce), the teleport term and the uniformly
//! redistributed dangling mass are folded in, and the new ranks are compared
//! to the previous ones (*compare-to-old-rank* join) — the iteration stops
//! once no rank moves by more than `epsilon`.
//!
//! **Compensation (`FixRanks`)**: failures destroy the current ranks of the
//! vertices in the lost partitions. As long as all ranks sum up to one, the
//! power iteration converges to the stationary distribution, so the
//! compensation re-initialises each lost vertex with an equal share of the
//! lost probability mass (paper §2.2.2). The rescaled ranks are farther from
//! the fixpoint than the destroyed ones were — visible as the spike in the
//! L1-difference plot of the demo GUI.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;

use dataflow::api::Environment;
use dataflow::dataset::Partitions;
use dataflow::error::Result;
use dataflow::partition::PartitionId;
use dataflow::prelude::BulkIteration;
use dataflow::stats::RunStats;
use graphs::{exact_pagerank, Graph, PageRankParams, VertexId};
use recovery::compensation::{lost_keys, BulkCompensation};

use crate::common::{self, FtConfig};

/// A `(vertex, rank)` record — the iteration state of the dataflow.
pub type Rank = (VertexId, f64);

/// Configuration of a PageRank run.
#[derive(Debug, Clone)]
pub struct PrConfig {
    /// Number of partitions / simulated workers.
    pub parallelism: usize,
    /// Iteration cap.
    pub max_iterations: u32,
    /// Damping factor `d` (teleport probability `1 - d`).
    pub damping: f64,
    /// Termination threshold: stop once no single rank moves by more than
    /// `epsilon` between consecutive iterations.
    pub epsilon: f64,
    /// Recovery strategy and failure scenario.
    pub ft: FtConfig,
    /// Precompute exact ranks and record the `converged` gauge (vertices
    /// within tolerance of their true rank) plus the `l1_diff` gauge.
    pub track_truth: bool,
    /// "Converged to the true rank" tolerance, as a fraction of the uniform
    /// rank `1/n` (the demo GUI's plot (i)).
    pub truth_tolerance: f64,
    /// Record a full `(vertex, rank)` snapshot after every superstep —
    /// the data behind the GUI's vertex sizing (Figure 5).
    pub capture_history: bool,
    /// Panic exactly once inside the rank-propagation body at this
    /// chronological superstep — the serving engine's UDF-failure injector.
    /// The unwind is caught by the executor and converted into a partition
    /// failure handled by the configured recovery strategy.
    pub panic_at: Option<u32>,
}

impl Default for PrConfig {
    fn default() -> Self {
        PrConfig {
            parallelism: 4,
            max_iterations: 100,
            damping: 0.85,
            epsilon: 1e-7,
            ft: FtConfig::default(),
            track_truth: true,
            truth_tolerance: 0.01,
            capture_history: false,
            panic_at: None,
        }
    }
}

/// Result of a PageRank run.
#[derive(Debug, Clone)]
pub struct PrResult {
    /// Final `(vertex, rank)` pairs, sorted by vertex id.
    pub ranks: Vec<Rank>,
    /// Sum of all final ranks (1 up to floating-point error — the invariant
    /// `FixRanks` maintains; `Ignore` runs violate it).
    pub rank_sum: f64,
    /// L1 distance to the exact power-iteration reference
    /// (only computed when [`PrConfig::track_truth`] is set).
    pub l1_to_exact: Option<f64>,
    /// One `(vertex, rank)` snapshot per superstep, sorted by vertex
    /// (only recorded when [`PrConfig::capture_history`] is set).
    pub history: Option<Vec<Vec<Rank>>>,
    /// Per-superstep engine statistics.
    pub stats: RunStats,
}

/// The paper's `FixRanks` compensation function.
pub struct FixRanks {
    num_vertices: usize,
    parallelism: usize,
}

impl FixRanks {
    /// Compensation for a graph with `num_vertices` vertices.
    pub fn new(num_vertices: usize, parallelism: usize) -> Self {
        FixRanks { num_vertices, parallelism }
    }
}

impl BulkCompensation<Rank> for FixRanks {
    fn compensate(&mut self, state: &mut Partitions<Rank>, lost: &[PartitionId], _iteration: u32) {
        // Ranks always sum to one; whatever the survivors don't hold was
        // destroyed with the failed partitions.
        let surviving_mass: f64 = state.iter_records().map(|&(_, r)| r).sum();
        let lost_vertices: Vec<(VertexId, PartitionId)> =
            lost_keys(self.num_vertices as u64, self.parallelism, lost).collect();
        if lost_vertices.is_empty() {
            return;
        }
        let share = (1.0 - surviving_mass).max(0.0) / lost_vertices.len() as f64;
        for (v, pid) in lost_vertices {
            state.partition_mut(pid).push((v, share));
        }
    }

    fn name(&self) -> &str {
        "FixRanks"
    }
}

/// Run PageRank over a (directed) graph.
pub fn run(graph: &Graph, config: &PrConfig) -> Result<PrResult> {
    let env = crate::common::environment(config.parallelism, &config.ft);
    let built = build(&env, graph, config)?;

    let mut ranks = built.result.collect()?;
    ranks.sort_by_key(|a| a.0);
    let stats = built.stats.take().expect("iteration executed");
    let history = built.history.map(|h| h.borrow_mut().split_off(0));
    let rank_sum = ranks.iter().map(|&(_, r)| r).sum();
    let truth_ref = built.truth;
    let l1_to_exact = config.track_truth.then(|| {
        // Reuse the reference the observer already computed.
        let truth = truth_ref.expect("track_truth implies a reference");
        let covered: f64 = ranks.iter().map(|&(v, r)| (r - truth[v as usize]).abs()).sum();
        // Vertices missing from the output (Ignore runs) count with their
        // full true rank.
        let present: std::collections::HashSet<VertexId> = ranks.iter().map(|&(v, _)| v).collect();
        let missing: f64 = truth
            .iter()
            .enumerate()
            .filter(|(v, _)| !present.contains(&(*v as VertexId)))
            .map(|(_, r)| r.abs())
            .sum();
        covered + missing
    });
    Ok(PrResult { ranks, rank_sum, l1_to_exact, history, stats })
}

fn exact_truth(graph: &Graph, config: &PrConfig) -> Vec<f64> {
    exact_pagerank(
        graph,
        PageRankParams { damping: config.damping, epsilon: 1e-12, max_iterations: 1000 },
    )
}

/// The dataflow pieces [`build`] returns.
pub struct BuiltPr {
    /// Final rank dataset; `collect()` triggers execution.
    pub result: dataflow::api::DataSet<Rank>,
    /// Filled with [`RunStats`] once the plan executes.
    pub stats: dataflow::prelude::StatsHandle,
    /// Per-superstep rank snapshots (when capturing history).
    pub history: Option<Rc<RefCell<Vec<Vec<Rank>>>>>,
    /// The exact power-iteration reference, computed once (when tracking
    /// truth) and shared between the observer and the final report.
    pub truth: Option<Arc<Vec<f64>>>,
}

/// Build the PageRank dataflow inside `env` without executing it. Exposed so
/// callers can `explain()` the plan (Figure 1b).
pub fn build(env: &Environment, graph: &Graph, config: &PrConfig) -> Result<BuiltPr> {
    build_warm(env, graph, config, None)
}

/// [`build`] with an optional warm start: instead of the uniform `1/n`
/// distribution, the power iteration starts from the given ranks (one entry
/// per vertex, summing to one) — the serving engine hands in the previous
/// epoch's fixpoint, renormalised over the mutated vertex set, which
/// converges in far fewer supersteps than a cold start after a small
/// mutation batch.
pub fn build_warm(
    env: &Environment,
    graph: &Graph,
    config: &PrConfig,
    warm: Option<&[Rank]>,
) -> Result<BuiltPr> {
    let n = graph.num_vertices();
    assert!(n > 0, "pagerank needs at least one vertex");
    let uniform = 1.0 / n as f64;
    let initial: Vec<Rank> = match warm {
        Some(ranks) => {
            assert_eq!(ranks.len(), n, "warm start must cover every vertex");
            ranks.to_vec()
        }
        None => graph.vertices().map(|v| (v, uniform)).collect(),
    };
    // The observer's L1-between-estimates gauge diffs against the actual
    // starting distribution, warm or cold.
    let mut initial_dist = vec![uniform; n];
    if let Some(ranks) = warm {
        for &(v, r) in ranks {
            initial_dist[v as usize] = r;
        }
    }
    let ranks0 = env.from_keyed_vec(initial, |r| r.0);
    let links: Vec<(VertexId, Vec<VertexId>)> = graph.adjacency_rows();
    let links_ds = env.from_keyed_vec(links, |l| l.0);

    let mut iteration = BulkIteration::new(&ranks0, config.max_iterations);
    iteration
        .set_fault_handler(common::bulk_handler(&config.ft, FixRanks::new(n, config.parallelism))?);
    iteration.set_failure_source(config.ft.scenario.to_source());
    // Convergence norm: L1 rank movement; vertices moving more than the
    // termination epsilon count as changed (mirrors Figure 1b's check).
    let probe_epsilon = config.epsilon;
    iteration.set_convergence_probe(common::keyed_bulk_probe(
        |r: &Rank| r.0,
        |old, new| old.map_or_else(|| new.1.abs(), |o| (new.1 - o.1).abs()),
        probe_epsilon,
    ));

    // Observer: rank-sum invariant, L1 between consecutive estimates, and
    // (optionally) the converged-to-true-rank count.
    let truth = if config.track_truth { Some(Arc::new(exact_truth(graph, config))) } else { None };
    let truth_ret = truth.clone();
    let tolerance = config.truth_tolerance * uniform;
    let history: Option<Rc<RefCell<Vec<Vec<Rank>>>>> =
        if config.capture_history { Some(Rc::new(RefCell::new(Vec::new()))) } else { None };
    let history_sink = history.clone();
    // The panic injector needs to know which superstep the body is
    // executing; the observer publishes it after each completed superstep.
    let superstep_cell = config.panic_at.map(|_| Arc::new(AtomicU32::new(0)));
    let observer_cell = superstep_cell.clone();
    let mut previous: Vec<f64> = initial_dist;
    iteration.set_observer(move |iter, state: &Partitions<Rank>, stats| {
        if let Some(cell) = &observer_cell {
            cell.store(iter + 1, Ordering::SeqCst);
        }
        let mut current = vec![0.0f64; n];
        for &(v, r) in state.iter_records() {
            current[v as usize] = r;
        }
        if let Some(history) = &history_sink {
            let mut snapshot: Vec<Rank> = state.iter_records().copied().collect();
            snapshot.sort_by_key(|r| r.0);
            history.borrow_mut().push(snapshot);
        }
        let sum: f64 = current.iter().sum();
        let l1: f64 = current.iter().zip(&previous).map(|(c, p)| (c - p).abs()).sum();
        stats.gauges.insert(common::RANK_SUM.into(), sum);
        stats.gauges.insert(common::L1_DIFF.into(), l1);
        if let Some(truth) = &truth {
            let converged = current
                .iter()
                .zip(truth.iter())
                .filter(|(c, t)| (**c - **t).abs() <= tolerance)
                .count();
            stats.gauges.insert(common::CONVERGED.into(), converged as f64);
        }
        previous = current;
    });

    let links_in = iteration.import(&links_ds);
    let ranks = iteration.state();
    let ranks_in = match (config.panic_at, superstep_cell) {
        (Some(target), Some(cell)) => {
            let fired = Arc::new(AtomicBool::new(false));
            ranks.map("panic-inject", move |&r: &Rank| {
                if cell.load(Ordering::SeqCst) == target && !fired.swap(true, Ordering::SeqCst) {
                    panic!("injected UDF panic at superstep {target}");
                }
                r
            })
        }
        _ => ranks.clone(),
    };

    // Each vertex pairs its rank with its out-links...
    let with_links = ranks_in.join(
        "find-neighbors",
        &links_in,
        |r: &Rank| r.0,
        |l: &(VertexId, Vec<VertexId>)| l.0,
        |r, l| (r.0, r.1, l.1.clone()),
    );
    // ...and propagates a fraction of its rank to each of them.
    let contributions = with_links
        .flat_map("contribute", |&(_, rank, ref neighbors): &(VertexId, f64, Vec<VertexId>)| {
            let share = rank / neighbors.len().max(1) as f64;
            neighbors.iter().map(|&w| (w, share)).collect()
        })
        .measured(common::MESSAGES);
    // Dangling vertices have nowhere to send their rank; collect that mass
    // globally so it can be redistributed uniformly.
    let dangling_mass = with_links.global_fold(
        "dangling-mass",
        0.0f64,
        |acc, r: &(VertexId, f64, Vec<VertexId>)| {
            if r.2.is_empty() {
                *acc += r.1;
            }
        },
        |acc, partial| *acc += partial,
    );
    // Sum the contributions per target vertex...
    let summed =
        contributions.reduce_by_key("recompute-ranks", |c: &Rank| c.0, |a, b| (a.0, a.1 + b.1));
    // ...re-attach vertices that received nothing...
    let collected = ranks.co_group(
        "collect-ranks",
        &summed,
        |r: &Rank| r.0,
        |s: &Rank| s.0,
        |&v, _old, sums| vec![(v, sums.first().map_or(0.0, |s| s.1))],
    );
    // ...and apply damping, teleport, and the dangling mass.
    let damping = config.damping;
    let new_ranks = collected.map_with_broadcast(
        "apply-teleport",
        &dangling_mass,
        move |&(v, sum): &Rank, dangling: &[f64]| {
            let mass = dangling.first().copied().unwrap_or(0.0);
            (v, (1.0 - damping) * uniform + damping * (sum + mass * uniform))
        },
    );
    // Figure 1b's termination check: which ranks still move?
    let epsilon = config.epsilon;
    let still_moving = new_ranks
        .join(
            "compare-to-old-rank",
            &ranks,
            |a: &Rank| a.0,
            |b: &Rank| b.0,
            |a, b| (a.1 - b.1).abs(),
        )
        .filter("still-moving", move |delta| *delta > epsilon);
    let (result, stats) = iteration.close_with_termination(new_ranks, still_moving);
    Ok(BuiltPr { result, stats, history, truth: truth_ret })
}

/// Textual rendering of the Figure 1b dataflow, compensation included.
pub fn plan_text(parallelism: usize) -> String {
    let graph = graphs::generators::demo_pagerank();
    let env = Environment::new(parallelism);
    let config = PrConfig { parallelism, track_truth: false, ..Default::default() };
    let built = build(&env, &graph, &config).expect("plan construction cannot fail");
    let mut text = built.result.explain();
    text.push_str(
        "\n(compensation, invoked only after failures:)\n  FixRanks [Map] — uniformly \
         redistribute the lost probability mass over the lost vertices\n",
    );
    text
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::generators;
    use recovery::scenario::FailureScenario;
    use recovery::strategy::Strategy;

    fn close_to_truth(result: &PrResult) -> bool {
        result.l1_to_exact.expect("track_truth on") < 1e-3
    }

    #[test]
    fn failure_free_demo_graph_matches_exact() {
        let graph = generators::demo_pagerank();
        let result = run(&graph, &PrConfig::default()).unwrap();
        assert!(result.stats.converged);
        assert!((result.rank_sum - 1.0).abs() < 1e-9, "sum {}", result.rank_sum);
        assert!(close_to_truth(&result), "l1 {:?}", result.l1_to_exact);
    }

    #[test]
    fn l1_diff_trends_downward() {
        let graph = generators::demo_pagerank();
        let result = run(&graph, &PrConfig::default()).unwrap();
        let l1 = result.stats.gauge_series(common::L1_DIFF);
        assert!(l1.len() > 3);
        assert!(l1.last().unwrap() < &l1[0], "{l1:?}");
    }

    #[test]
    fn optimistic_recovery_converges_to_true_ranks() {
        let graph = generators::demo_pagerank();
        let config = PrConfig {
            ft: FtConfig::optimistic(FailureScenario::none().fail_at(5, &[1])),
            ..Default::default()
        };
        let result = run(&graph, &config).unwrap();
        assert!(result.stats.converged);
        assert_eq!(result.stats.failures().count(), 1);
        assert!((result.rank_sum - 1.0).abs() < 1e-9);
        assert!(close_to_truth(&result), "l1 {:?}", result.l1_to_exact);
    }

    #[test]
    fn failure_spikes_l1_and_plummets_converged() {
        // The demo's signature PageRank plots: failure at iteration 5 →
        // L1 spike and converged-vertex plummet (§3.3).
        let graph = generators::preferential_attachment(500, 2, 3);
        let failure_free = run(&graph, &PrConfig::default()).unwrap();
        let config = PrConfig {
            ft: FtConfig::optimistic(FailureScenario::none().fail_at(5, &[0])),
            ..Default::default()
        };
        let result = run(&graph, &config).unwrap();
        // The L1 between consecutive estimates spikes right after the
        // failure, where the failure-free curve keeps decaying...
        let l1 = result.stats.gauge_series(common::L1_DIFF);
        let l1_ff = failure_free.stats.gauge_series(common::L1_DIFF);
        assert!(l1[6] > l1[4], "L1 must spike after the failure: {:?}", &l1[..10]);
        assert!(
            l1[6] > 3.0 * l1_ff[6],
            "spike must exceed the failure-free decay: {:?}",
            &l1[..10]
        );
        // ...and the compensated run has fewer vertices at their true rank
        // than the failure-free run at the same superstep.
        let converged = result.stats.gauge_series(common::CONVERGED);
        let converged_ff = failure_free.stats.gauge_series(common::CONVERGED);
        assert!(
            converged[5] < converged_ff[5],
            "converged count must plummet vs. failure-free: {:?} vs {:?}",
            &converged[..10],
            &converged_ff[..10]
        );
        assert!(close_to_truth(&result));
    }

    #[test]
    fn rank_sum_invariant_holds_through_compensation() {
        let graph = generators::demo_pagerank();
        let config = PrConfig {
            ft: FtConfig::optimistic(FailureScenario::none().fail_at(3, &[0, 2])),
            ..Default::default()
        };
        let result = run(&graph, &config).unwrap();
        for (superstep, sum) in result.stats.gauge_series(common::RANK_SUM).iter().enumerate() {
            assert!((sum - 1.0).abs() < 1e-9, "superstep {superstep}: sum {sum}");
        }
    }

    #[test]
    fn all_strategies_except_ignore_are_correct() {
        let graph = generators::demo_pagerank();
        for strategy in
            [Strategy::Optimistic, Strategy::Checkpoint { interval: 2 }, Strategy::Restart]
        {
            let config = PrConfig {
                ft: FtConfig {
                    strategy,
                    scenario: FailureScenario::none().fail_at(4, &[1]),
                    ..Default::default()
                },
                ..Default::default()
            };
            let result = run(&graph, &config).unwrap();
            assert!(result.stats.converged, "strategy {strategy:?}");
            assert!(close_to_truth(&result), "strategy {strategy:?}: {:?}", result.l1_to_exact);
        }
    }

    #[test]
    fn ignore_strategy_violates_the_distribution_invariant() {
        // Without compensation the rank sum drops below one after the
        // failure. (With the damped teleport formulation the iteration is an
        // affine contraction, so the mass slowly regenerates — the paper's
        // invariant argument is about restoring it *immediately*; the
        // lasting damage of Ignore is the transient violation and the extra
        // iterations spent recovering, and the `connected_components`
        // ablation shows the permanently-wrong-result case.)
        let graph = generators::preferential_attachment(200, 2, 9);
        let failure_free = run(&graph, &PrConfig::default()).unwrap();
        let config = PrConfig {
            ft: FtConfig::ignore(FailureScenario::none().fail_at(3, &[0, 1])),
            ..Default::default()
        };
        let result = run(&graph, &config).unwrap();
        let sums = result.stats.gauge_series(common::RANK_SUM);
        assert!(sums[3] < 0.99, "mass must be lost at the failure superstep: {:?}", &sums[..6]);
        assert!(
            result.stats.supersteps() > failure_free.stats.supersteps(),
            "recovering the lost mass costs extra iterations: {} vs {}",
            result.stats.supersteps(),
            failure_free.stats.supersteps()
        );
    }

    #[test]
    fn dangling_vertices_keep_mass_at_one() {
        // demo_pagerank has a dangling vertex (9).
        let graph = generators::demo_pagerank();
        let result = run(&graph, &PrConfig::default()).unwrap();
        for sum in result.stats.gauge_series(common::RANK_SUM) {
            assert!((sum - 1.0).abs() < 1e-9, "{sum}");
        }
    }

    #[test]
    fn messages_equal_directed_edges_each_superstep() {
        let graph = generators::demo_pagerank();
        let result = run(&graph, &PrConfig::default()).unwrap();
        let expected = graph.num_directed_edges() as u64;
        for m in result.stats.counter_series(common::MESSAGES) {
            assert_eq!(m, expected);
        }
    }

    #[test]
    fn warm_start_reconverges_in_fewer_supersteps_to_the_same_ranks() {
        let graph = generators::preferential_attachment(200, 2, 3);
        let config = PrConfig { track_truth: false, ..Default::default() };
        let cold = run(&graph, &config).unwrap();
        assert!(cold.stats.converged);

        // Restart from the cold fixpoint: the warm run must terminate almost
        // immediately and stay at the fixpoint.
        let env = common::environment(config.parallelism, &config.ft);
        let built = build_warm(&env, &graph, &config, Some(&cold.ranks)).unwrap();
        let mut ranks = built.result.collect().unwrap();
        ranks.sort_by_key(|r| r.0);
        let stats = built.stats.take().unwrap();
        assert!(stats.converged);
        assert!(
            stats.supersteps() < cold.stats.supersteps(),
            "warm: {} supersteps, cold: {}",
            stats.supersteps(),
            cold.stats.supersteps()
        );
        for (&(v, warm), &(_, exact)) in ranks.iter().zip(cold.ranks.iter()) {
            assert!((warm - exact).abs() < 1e-6, "vertex {v}: {warm} vs {exact}");
        }
    }

    #[test]
    fn panic_at_injects_one_compensated_failure() {
        let graph = generators::demo_pagerank();
        let config = PrConfig {
            ft: FtConfig::optimistic(FailureScenario::none()),
            panic_at: Some(4),
            ..Default::default()
        };
        let result = run(&graph, &config).unwrap();
        assert!(result.stats.converged);
        let failures: Vec<_> = result.stats.failures().collect();
        assert_eq!(failures.len(), 1, "the injected panic must surface as one failure");
        assert_eq!(failures[0].1.recovery, dataflow::stats::RecoveryKind::Compensated);
        assert!(close_to_truth(&result), "l1 {:?}", result.l1_to_exact);
    }

    #[test]
    fn plan_text_names_the_figure_1b_operators() {
        let text = plan_text(4);
        for name in ["find-neighbors", "recompute-ranks", "compare-to-old-rank", "FixRanks"] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
    }
}
