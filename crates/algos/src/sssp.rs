//! Single-source shortest paths as a delta iteration — an extension
//! algorithm demonstrating the generality of optimistic recovery.
//!
//! Hop distances diffuse outward from the source: vertices that improved
//! their distance send `distance + 1` to their neighbours; each vertex keeps
//! the minimum incoming candidate. Like Connected Components, the fixpoint
//! is the componentwise minimum of a monotone function, so resetting lost
//! vertices to their *initial* distances (`0` for the source, `∞`
//! otherwise) and re-seeding propagation recovers the exact result.

use std::sync::Arc;

use dataflow::dataset::Partitions;
use dataflow::error::Result;
use dataflow::ft::SolutionSets;
use dataflow::hash::FxHashSet;
use dataflow::partition::{hash_partition, PartitionId};
use dataflow::prelude::DeltaIteration;
use dataflow::stats::RunStats;
use graphs::{Graph, VertexId};
use recovery::compensation::{lost_keys, DeltaCompensation};

use crate::common::{self, FtConfig};

/// Distance value for unreachable vertices.
pub const UNREACHABLE: u64 = u64::MAX;

/// A `(vertex, distance)` record.
pub type Distance = (VertexId, u64);

/// Configuration of an SSSP run.
#[derive(Debug, Clone)]
pub struct SsspConfig {
    /// Number of partitions / simulated workers.
    pub parallelism: usize,
    /// Iteration cap.
    pub max_iterations: u32,
    /// The source vertex.
    pub source: VertexId,
    /// Recovery strategy and failure scenario.
    pub ft: FtConfig,
    /// Compare against a BFS reference.
    pub track_truth: bool,
}

impl Default for SsspConfig {
    fn default() -> Self {
        SsspConfig {
            parallelism: 4,
            max_iterations: 200,
            source: 0,
            ft: FtConfig::default(),
            track_truth: true,
        }
    }
}

/// Result of an SSSP run.
#[derive(Debug, Clone)]
pub struct SsspResult {
    /// Final `(vertex, distance)` pairs, sorted by vertex id;
    /// [`UNREACHABLE`] marks vertices outside the source's component.
    pub distances: Vec<Distance>,
    /// `Some(true)` when the distances match the BFS reference.
    pub correct: Option<bool>,
    /// Per-superstep engine statistics.
    pub stats: RunStats,
}

/// Exact hop distances by breadth-first search.
pub fn bfs_distances(graph: &Graph, source: VertexId) -> Vec<u64> {
    let n = graph.num_vertices();
    let mut dist = vec![UNREACHABLE; n];
    let mut queue = std::collections::VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize];
        for &u in graph.neighbors(v) {
            if dist[u as usize] == UNREACHABLE {
                dist[u as usize] = d + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// Compensation for SSSP: reset lost vertices to their initial distances
/// and re-seed propagation from them and their surviving neighbours.
pub struct FixDistances {
    adjacency: Arc<Vec<Vec<VertexId>>>,
    source: VertexId,
    parallelism: usize,
}

impl FixDistances {
    /// Compensation over the given graph.
    pub fn new(graph: &Graph, source: VertexId, parallelism: usize) -> Self {
        FixDistances {
            adjacency: Arc::new(graph.adjacency_rows().into_iter().map(|(_, ns)| ns).collect()),
            source,
            parallelism,
        }
    }
}

impl DeltaCompensation<VertexId, u64, Distance> for FixDistances {
    fn compensate(
        &mut self,
        solution: &mut SolutionSets<VertexId, u64>,
        workset: &mut Partitions<Distance>,
        lost: &[PartitionId],
        _iteration: u32,
    ) {
        let lost_set: FxHashSet<PartitionId> = lost.iter().copied().collect();
        let mut resenders: FxHashSet<VertexId> = FxHashSet::default();
        for (v, pid) in lost_keys(self.adjacency.len() as u64, self.parallelism, lost) {
            let initial = if v == self.source { 0 } else { UNREACHABLE };
            solution[pid].insert(v, initial);
            if v == self.source {
                // Only a finite distance is worth re-propagating.
                workset.partition_mut(pid).push((v, 0));
            }
            for &u in &self.adjacency[v as usize] {
                if !lost_set.contains(&hash_partition(&u, self.parallelism)) {
                    resenders.insert(u);
                }
            }
        }
        let mut resenders: Vec<VertexId> = resenders.into_iter().collect();
        resenders.sort_unstable();
        for u in resenders {
            let pid = hash_partition(&u, self.parallelism);
            if let Some(&d) = solution[pid].get(&u) {
                if d != UNREACHABLE {
                    workset.partition_mut(pid).push((u, d));
                }
            }
        }
    }

    fn name(&self) -> &str {
        "FixDistances"
    }
}

/// Run single-source shortest paths over an undirected graph.
pub fn run(graph: &Graph, config: &SsspConfig) -> Result<SsspResult> {
    assert!(
        (config.source as usize) < graph.num_vertices(),
        "source vertex {} out of range",
        config.source
    );
    let env = crate::common::environment(config.parallelism, &config.ft);
    let source = config.source;
    let initial: Vec<Distance> =
        graph.vertices().map(|v| (v, if v == source { 0 } else { UNREACHABLE })).collect();
    let solution = env.from_keyed_vec(initial, |r| r.0);
    let workset = env.from_keyed_vec(vec![(source, 0u64)], |r| r.0);
    let edges: Vec<(VertexId, VertexId)> = graph.directed_edges().collect();
    let edges_ds = env.from_keyed_vec(edges, |e| e.0);

    let mut iteration = DeltaIteration::new(&solution, &workset, config.max_iterations);
    iteration.set_fault_handler(common::delta_handler(
        &config.ft,
        FixDistances::new(graph, source, config.parallelism),
    )?);
    iteration.set_failure_source(config.ft.scenario.to_source());
    // Convergence norm: summed distance improvement; a vertex leaving
    // UNREACHABLE (or re-seeded after a failure) counts as one unit.
    iteration.set_norm_probe(common::delta_norm_probe(|old: Option<&u64>, new| match old {
        Some(&o) if o != UNREACHABLE => o.saturating_sub(*new) as f64,
        _ => 1.0,
    }));

    if config.track_truth {
        let truth = bfs_distances(graph, source);
        iteration.set_observer(move |_iter, solution: &SolutionSets<VertexId, u64>, _ws, stats| {
            let converged = solution
                .iter()
                .flat_map(|set| set.iter())
                .filter(|(&v, &d)| truth[v as usize] == d)
                .count();
            stats.gauges.insert(common::CONVERGED.into(), converged as f64);
        });
    }

    let edges_in = iteration.import(&edges_ds);
    let candidates = iteration
        .workset()
        .join(
            "distance-to-neighbors",
            &edges_in,
            |w: &Distance| w.0,
            |e| e.0,
            |w, e| (e.1, w.1.saturating_add(1)),
        )
        .measured(common::MESSAGES)
        .reduce_by_key("candidate-distance", |c| c.0, |a, b| if a.1 <= b.1 { a } else { b });
    let updates = candidates
        .join(
            "distance-update",
            &iteration.solution(),
            |c| c.0,
            |s: &Distance| s.0,
            |c, s| if c.1 < s.1 { Some((c.0, c.1)) } else { None },
        )
        .flat_map("updated-distances", |u: &Option<Distance>| u.iter().copied().collect());
    let (result, handle) = iteration.close(updates.clone(), updates);

    let mut distances = result.collect()?;
    distances.sort_unstable();
    let stats = handle.take().expect("iteration executed");
    let correct = config.track_truth.then(|| {
        let truth = bfs_distances(graph, source);
        distances.len() == truth.len() && distances.iter().all(|&(v, d)| truth[v as usize] == d)
    });
    Ok(SsspResult { distances, correct, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::generators;
    use recovery::scenario::FailureScenario;
    use recovery::strategy::Strategy;

    #[test]
    fn path_graph_distances_are_positions() {
        let graph = generators::path(10);
        let result = run(&graph, &SsspConfig::default()).unwrap();
        assert_eq!(result.correct, Some(true));
        for &(v, d) in &result.distances {
            assert_eq!(d, v);
        }
        assert!(result.stats.converged);
    }

    #[test]
    fn disconnected_vertices_stay_unreachable() {
        let graph = generators::disjoint_union(&[generators::path(4), generators::ring(3)]);
        let result = run(&graph, &SsspConfig::default()).unwrap();
        assert_eq!(result.correct, Some(true));
        for &(v, d) in &result.distances {
            if v >= 4 {
                assert_eq!(d, UNREACHABLE);
            }
        }
    }

    #[test]
    fn source_can_be_any_vertex() {
        let graph = generators::ring(8);
        let config = SsspConfig { source: 5, ..Default::default() };
        let result = run(&graph, &config).unwrap();
        assert_eq!(result.correct, Some(true));
        assert_eq!(result.distances[5], (5, 0));
    }

    #[test]
    fn optimistic_recovery_is_exact() {
        let graph = generators::grid(8, 8);
        let config = SsspConfig {
            ft: FtConfig::optimistic(FailureScenario::none().fail_at(3, &[0, 2])),
            ..Default::default()
        };
        let result = run(&graph, &config).unwrap();
        assert_eq!(result.correct, Some(true));
        assert_eq!(result.stats.failures().count(), 1);
    }

    #[test]
    fn losing_the_source_partition_still_recovers() {
        let graph = generators::path(16);
        let source_partition = dataflow::partition::hash_partition(&0u64, 4);
        let config = SsspConfig {
            ft: FtConfig::optimistic(FailureScenario::none().fail_at(2, &[source_partition])),
            ..Default::default()
        };
        let result = run(&graph, &config).unwrap();
        assert_eq!(result.correct, Some(true));
    }

    #[test]
    fn all_strategies_except_ignore_are_correct() {
        let graph = generators::preferential_attachment(150, 2, 21);
        for strategy in
            [Strategy::Optimistic, Strategy::Checkpoint { interval: 2 }, Strategy::Restart]
        {
            let config = SsspConfig {
                ft: FtConfig {
                    strategy,
                    scenario: FailureScenario::none().fail_at(2, &[1]),
                    ..Default::default()
                },
                ..Default::default()
            };
            let result = run(&graph, &config).unwrap();
            assert_eq!(result.correct, Some(true), "strategy {strategy:?}");
        }
    }

    #[test]
    fn bfs_reference_is_correct_on_grid() {
        let graph = generators::grid(4, 3);
        let dist = bfs_distances(&graph, 0);
        // Manhattan distances from the corner.
        assert_eq!(dist[0], 0);
        assert_eq!(dist[3], 3);
        assert_eq!(dist[4], 1);
        assert_eq!(dist[11], 3 + 2);
    }
}
