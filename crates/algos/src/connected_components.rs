//! Connected Components as a delta iteration — the paper's Figure 1a.
//!
//! The diffusion-based algorithm (Kang et al., PEGASUS): every vertex starts
//! with its own id as label; each iteration, vertices that updated their
//! label send it to their neighbours (*label-to-neighbors* join), every
//! vertex reduces its incoming candidates to the minimum (*candidate-label*
//! reduce) and updates its solution-set entry when the candidate is smaller
//! (*label-update* join). At convergence all vertices of a component carry
//! the component's minimum vertex id.
//!
//! **Compensation (`FixComponents`)**: failures destroy the labels of the
//! vertices hashed to the lost partitions. Re-initialising those vertices to
//! their initial labels guarantees convergence to the correct solution
//! (Schelter et al., CIKM 2013). The restored vertices — as well as their
//! neighbours — must propagate their labels again, so the compensation also
//! re-seeds the working set; that extra propagation is the message spike the
//! demo GUI shows in the iterations after a failure.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;

use dataflow::api::Environment;
use dataflow::dataset::Partitions;
use dataflow::error::Result;
use dataflow::ft::SolutionSets;
use dataflow::hash::FxHashSet;
use dataflow::partition::{hash_partition, PartitionId};
use dataflow::prelude::DeltaIteration;
use dataflow::stats::RunStats;
use graphs::{exact_components, Graph, VertexId};
use recovery::compensation::{lost_keys, DeltaCompensation};

use crate::common::{self, FtConfig};

/// A `(vertex, label)` record — both the solution-set entry and the workset
/// message type of the dataflow.
pub type Label = (VertexId, VertexId);

/// Configuration of a Connected Components run.
#[derive(Debug, Clone)]
pub struct CcConfig {
    /// Number of partitions / simulated workers.
    pub parallelism: usize,
    /// Iteration cap (the algorithm normally terminates on an empty
    /// workset long before).
    pub max_iterations: u32,
    /// Recovery strategy and failure scenario.
    pub ft: FtConfig,
    /// Precompute the exact components and record the per-iteration
    /// `converged` / `distinct_labels` gauges the demo GUI plots.
    pub track_truth: bool,
    /// Record a full `(vertex, label)` snapshot after every superstep —
    /// the data behind the GUI's per-iteration colouring (Figure 3).
    pub capture_history: bool,
    /// Panic exactly once inside the delta body at this chronological
    /// superstep — the serving engine's UDF-failure injector. The unwind is
    /// caught by the executor and converted into a partition failure handled
    /// by the configured recovery strategy.
    pub panic_at: Option<u32>,
}

impl Default for CcConfig {
    fn default() -> Self {
        CcConfig {
            parallelism: 4,
            max_iterations: 200,
            ft: FtConfig::default(),
            track_truth: true,
            capture_history: false,
            panic_at: None,
        }
    }
}

/// Warm-start state for an incremental CC run: the previous fixpoint labels
/// (with mutation-affected vertices already reset) as the initial solution
/// set, and only the affected vertices as the initial workset — the delta
/// driver then propagates from those seeds instead of from every vertex.
#[derive(Debug, Clone, Default)]
pub struct CcSeed {
    /// Initial `(vertex, label)` solution entries — one per vertex.
    pub solution: Vec<Label>,
    /// Initial workset records: the vertices whose labels must propagate.
    pub workset: Vec<Label>,
}

/// Result of a Connected Components run.
#[derive(Debug, Clone)]
pub struct CcResult {
    /// Final `(vertex, label)` pairs, sorted by vertex id.
    pub labels: Vec<Label>,
    /// Number of distinct labels in the result.
    pub num_components: usize,
    /// `Some(true)` when the labels match the exact reference
    /// (only computed when [`CcConfig::track_truth`] is set).
    pub correct: Option<bool>,
    /// One `(vertex, label)` snapshot per superstep, sorted by vertex
    /// (only recorded when [`CcConfig::capture_history`] is set).
    pub history: Option<Vec<Vec<Label>>>,
    /// Per-superstep engine statistics.
    pub stats: RunStats,
}

/// The paper's `FixComponents` compensation function.
pub struct FixComponents {
    adjacency: Arc<Vec<Vec<VertexId>>>,
    parallelism: usize,
}

impl FixComponents {
    /// Compensation over the given graph.
    pub fn new(graph: &Graph, parallelism: usize) -> Self {
        FixComponents {
            adjacency: Arc::new(graph.adjacency_rows().into_iter().map(|(_, ns)| ns).collect()),
            parallelism,
        }
    }
}

impl DeltaCompensation<VertexId, VertexId, Label> for FixComponents {
    fn compensate(
        &mut self,
        solution: &mut SolutionSets<VertexId, VertexId>,
        workset: &mut Partitions<Label>,
        lost: &[PartitionId],
        _iteration: u32,
    ) {
        let lost_set: FxHashSet<PartitionId> = lost.iter().copied().collect();
        // Surviving neighbours of lost vertices: they hold correct labels
        // but stopped propagating, so they must re-enter the working set.
        let mut resenders: FxHashSet<VertexId> = FxHashSet::default();
        for (v, pid) in lost_keys(self.adjacency.len() as u64, self.parallelism, lost) {
            // Re-initialise the lost vertex to its initial (unique) label...
            solution[pid].insert(v, v);
            // ...and let it propagate again.
            workset.partition_mut(pid).push((v, v));
            for &u in &self.adjacency[v as usize] {
                if !lost_set.contains(&hash_partition(&u, self.parallelism)) {
                    resenders.insert(u);
                }
            }
        }
        let mut resenders: Vec<VertexId> = resenders.into_iter().collect();
        resenders.sort_unstable();
        for u in resenders {
            let pid = hash_partition(&u, self.parallelism);
            if let Some(&label) = solution[pid].get(&u) {
                workset.partition_mut(pid).push((u, label));
            }
        }
    }

    fn name(&self) -> &str {
        "FixComponents"
    }
}

/// Run Connected Components over an undirected graph.
///
/// # Panics
/// Panics when the graph is directed.
pub fn run(graph: &Graph, config: &CcConfig) -> Result<CcResult> {
    assert!(!graph.is_directed(), "connected components expects an undirected graph");
    let env = crate::common::environment(config.parallelism, &config.ft);
    let built = build(&env, graph, config)?;

    let mut labels = built.result.collect()?;
    labels.sort_unstable();
    let stats = built.stats.take().expect("iteration executed");
    let history = built.history.map(|h| h.borrow_mut().split_off(0));

    let mut distinct: Vec<VertexId> = labels.iter().map(|&(_, l)| l).collect();
    distinct.sort_unstable();
    distinct.dedup();
    let correct = config.track_truth.then(|| {
        let truth = exact_components(graph);
        labels.len() == truth.len() && labels.iter().all(|&(v, l)| truth[v as usize] == l)
    });
    Ok(CcResult { labels, num_components: distinct.len(), correct, history, stats })
}

/// The dataflow pieces [`build`] returns: the (lazy) result dataset, the
/// statistics handle, and the optional state-history buffer.
pub struct BuiltCc {
    /// Final solution-set dataset; `collect()` triggers execution.
    pub result: dataflow::api::DataSet<Label>,
    /// Filled with [`RunStats`] once the plan executes.
    pub stats: dataflow::prelude::StatsHandle,
    /// Per-superstep label snapshots (when capturing history).
    pub history: Option<Rc<RefCell<Vec<Vec<Label>>>>>,
}

/// Build the CC dataflow inside `env` without executing it. Exposed so
/// callers can inspect or `explain()` the plan (Figure 1a).
pub fn build(env: &Environment, graph: &Graph, config: &CcConfig) -> Result<BuiltCc> {
    build_seeded(env, graph, config, None)
}

/// [`build`] with an optional warm start: a cold run initialises both the
/// solution set and the workset to `(v, v)` for every vertex; a seeded run
/// starts from the previous fixpoint and propagates only from the seeds —
/// the serving engine's incremental re-convergence.
pub fn build_seeded(
    env: &Environment,
    graph: &Graph,
    config: &CcConfig,
    seed: Option<&CcSeed>,
) -> Result<BuiltCc> {
    let (initial, seeds): (Vec<Label>, Vec<Label>) = match seed {
        Some(seed) => (seed.solution.clone(), seed.workset.clone()),
        None => {
            let initial: Vec<Label> = graph.vertices().map(|v| (v, v)).collect();
            (initial.clone(), initial)
        }
    };
    let solution = env.from_keyed_vec(initial, |r| r.0);
    let workset = env.from_keyed_vec(seeds, |r| r.0);
    let edges: Vec<(VertexId, VertexId)> = graph.directed_edges().collect();
    let edges_ds = env.from_keyed_vec(edges, |e| e.0);

    let mut iteration = DeltaIteration::new(&solution, &workset, config.max_iterations);
    iteration.set_fault_handler(common::delta_handler(
        &config.ft,
        FixComponents::new(graph, config.parallelism),
    )?);
    iteration.set_failure_source(config.ft.scenario.to_source());
    // Convergence norm: total label decrease per superstep (labels only
    // ever shrink towards the component minimum).
    iteration.set_norm_probe(common::delta_norm_probe(|old: Option<&VertexId>, new| {
        old.map_or(0.0, |&o| o.saturating_sub(*new) as f64)
    }));

    let truth = if config.track_truth { Some(exact_components(graph)) } else { None };
    let history: Option<Rc<RefCell<Vec<Vec<Label>>>>> =
        if config.capture_history { Some(Rc::new(RefCell::new(Vec::new()))) } else { None };
    let history_sink = history.clone();
    // The panic injector needs to know which superstep the body is
    // executing; the observer publishes it after each completed superstep.
    let superstep_cell = config.panic_at.map(|_| Arc::new(AtomicU32::new(0)));
    let observer_cell = superstep_cell.clone();
    if truth.is_some() || history_sink.is_some() || observer_cell.is_some() {
        iteration.set_observer(
            move |iter, solution: &SolutionSets<VertexId, VertexId>, _ws, stats| {
                if let Some(cell) = &observer_cell {
                    cell.store(iter + 1, Ordering::SeqCst);
                }
                if let Some(truth) = &truth {
                    let mut converged = 0u64;
                    let mut distinct: FxHashSet<VertexId> = FxHashSet::default();
                    for set in solution {
                        for (&v, &label) in set {
                            if truth[v as usize] == label {
                                converged += 1;
                            }
                            distinct.insert(label);
                        }
                    }
                    stats.gauges.insert(common::CONVERGED.into(), converged as f64);
                    stats.gauges.insert(common::DISTINCT_LABELS.into(), distinct.len() as f64);
                }
                if let Some(history) = &history_sink {
                    let mut snapshot: Vec<Label> =
                        solution.iter().flat_map(|set| set.iter().map(|(&v, &l)| (v, l))).collect();
                    snapshot.sort_unstable();
                    history.borrow_mut().push(snapshot);
                }
            },
        );
    }

    let edges_in = iteration.import(&edges_ds);
    let workset_in = iteration.workset();
    let workset_in = match (config.panic_at, superstep_cell) {
        (Some(target), Some(cell)) => {
            let fired = Arc::new(AtomicBool::new(false));
            workset_in.map("panic-inject", move |&w: &Label| {
                if cell.load(Ordering::SeqCst) == target && !fired.swap(true, Ordering::SeqCst) {
                    panic!("injected UDF panic at superstep {target}");
                }
                w
            })
        }
        _ => workset_in,
    };
    // Updated vertices send their label to every neighbour...
    let candidates = workset_in
        .join("label-to-neighbors", &edges_in, |w: &Label| w.0, |e| e.0, |w, e| (e.1, w.1))
        .measured(common::MESSAGES)
        // ...each vertex keeps the smallest incoming candidate...
        .reduce_by_key("candidate-label", |c| c.0, |a, b| if a.1 <= b.1 { a } else { b });
    // ...and updates its solution entry when the candidate improves on it.
    let updates = candidates
        .join(
            "label-update",
            &iteration.solution(),
            |c| c.0,
            |s: &Label| s.0,
            |c, s| if c.1 < s.1 { Some((c.0, c.1)) } else { None },
        )
        .flat_map("updated-labels", |u: &Option<Label>| u.iter().copied().collect());
    let (result, stats) = iteration.close(updates.clone(), updates);
    Ok(BuiltCc { result, stats, history })
}

/// Textual rendering of the Figure 1a dataflow, compensation included.
pub fn plan_text(parallelism: usize) -> String {
    let graph = graphs::generators::demo_components();
    let env = Environment::new(parallelism);
    let config = CcConfig { parallelism, track_truth: false, ..Default::default() };
    let built = build(&env, &graph, &config).expect("plan construction cannot fail");
    let mut text = built.result.explain();
    text.push_str(
        "\n(compensation, invoked only after failures:)\n  FixComponents [Map] — reset lost \
         vertices to initial labels, re-seed propagation\n",
    );
    text
}

/// Connected Components as a **bulk** iteration: every superstep, every
/// vertex recomputes `min(own label, neighbours' labels)` — no working set,
/// the whole state is recomputed even where it already converged (§2.1).
/// Exists for the bulk-vs-delta ablation and as a second recovery target:
/// the compensation is simply "reset lost vertices to their initial
/// labels"; the next superstep re-derives their minima from the imports.
pub fn run_bulk(graph: &Graph, config: &CcConfig) -> Result<CcResult> {
    assert!(!graph.is_directed(), "connected components expects an undirected graph");
    let env = crate::common::environment(config.parallelism, &config.ft);
    let initial: Vec<Label> = graph.vertices().map(|v| (v, v)).collect();
    let labels0 = env.from_keyed_vec(initial, |r| r.0);
    let edges: Vec<(VertexId, VertexId)> = graph.directed_edges().collect();
    let edges_ds = env.from_keyed_vec(edges, |e| e.0);

    let mut iteration = dataflow::prelude::BulkIteration::new(&labels0, config.max_iterations);
    let parallelism = config.parallelism;
    let num_vertices = graph.num_vertices() as VertexId;
    iteration.set_fault_handler(common::bulk_handler(
        &config.ft,
        recovery::compensation::Named::new(
            "FixComponents",
            move |state: &mut Partitions<Label>, lost: &[PartitionId], _iter: u32| {
                for (v, pid) in lost_keys(num_vertices, parallelism, lost) {
                    state.partition_mut(pid).push((v, v));
                }
            },
        ),
    )?);
    iteration.set_failure_source(config.ft.scenario.to_source());
    // Same norm as the delta variant: summed label decrease; a vertex
    // counts as changed when its label moved at all.
    iteration.set_convergence_probe(common::keyed_bulk_probe(
        |l: &Label| l.0,
        |old, new| old.map_or(0.0, |o| o.1.saturating_sub(new.1) as f64),
        0.0,
    ));
    if config.track_truth {
        let truth = exact_components(graph);
        iteration.set_observer(move |_iter, state: &Partitions<Label>, stats| {
            let converged = state.iter_records().filter(|&&(v, l)| truth[v as usize] == l).count();
            stats.gauges.insert(common::CONVERGED.into(), converged as f64);
        });
    }

    let edges_in = iteration.import(&edges_ds);
    let labels = iteration.state();
    let candidates = labels
        .join("label-to-neighbors", &edges_in, |l: &Label| l.0, |e| e.0, |l, e| (e.1, l.1))
        .measured(common::MESSAGES)
        .union("with-own-label", &labels)
        .reduce_by_key("candidate-label", |c: &Label| c.0, |a, b| if a.1 <= b.1 { a } else { b });
    let still_changing = candidates
        .join("label-update", &labels, |c: &Label| c.0, |l: &Label| l.0, |c, l| c.1 != l.1)
        .filter("changed", |changed| *changed);
    let (result, handle) = iteration.close_with_termination(candidates, still_changing);

    let mut labels = result.collect()?;
    labels.sort_unstable();
    let stats = handle.take().expect("iteration executed");
    let mut distinct: Vec<VertexId> = labels.iter().map(|&(_, l)| l).collect();
    distinct.sort_unstable();
    distinct.dedup();
    let correct = config.track_truth.then(|| {
        let truth = exact_components(graph);
        labels.len() == truth.len() && labels.iter().all(|&(v, l)| truth[v as usize] == l)
    });
    Ok(CcResult { labels, num_components: distinct.len(), correct, history: None, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::generators;
    use recovery::scenario::FailureScenario;
    use recovery::strategy::Strategy;

    fn assert_correct(result: &CcResult, graph: &Graph) {
        let truth = exact_components(graph);
        assert_eq!(result.labels.len(), truth.len());
        for &(v, label) in &result.labels {
            assert_eq!(label, truth[v as usize], "vertex {v}");
        }
    }

    #[test]
    fn failure_free_demo_graph() {
        let graph = generators::demo_components();
        let result = run(&graph, &CcConfig::default()).unwrap();
        assert_eq!(result.num_components, 3);
        assert_eq!(result.correct, Some(true));
        assert!(result.stats.converged);
        assert_correct(&result, &graph);
    }

    #[test]
    fn messages_start_at_two_e() {
        let graph = generators::demo_components();
        let result = run(&graph, &CcConfig::default()).unwrap();
        let messages = result.stats.counter_series(common::MESSAGES);
        assert_eq!(messages[0] as usize, 2 * graph.num_edges());
    }

    #[test]
    fn converged_gauge_is_monotone_without_failures() {
        let graph = generators::demo_components();
        let result = run(&graph, &CcConfig::default()).unwrap();
        let converged = result.stats.gauge_series(common::CONVERGED);
        assert!(converged.windows(2).all(|w| w[1] >= w[0]), "{converged:?}");
        assert_eq!(*converged.last().unwrap() as usize, 16);
    }

    #[test]
    fn optimistic_recovery_converges_to_exact_labels() {
        let graph = generators::demo_components();
        let config = CcConfig {
            ft: FtConfig::optimistic(FailureScenario::none().fail_at(2, &[1])),
            ..Default::default()
        };
        let result = run(&graph, &config).unwrap();
        assert_eq!(result.correct, Some(true));
        assert!(result.stats.converged);
        assert_eq!(result.stats.failures().count(), 1);
        assert_correct(&result, &graph);
    }

    #[test]
    fn failure_plummets_converged_gauge_and_spikes_messages() {
        // The demo's signature plots: a plummet in converged vertices at the
        // failure iteration and elevated messages right after.
        let graph = generators::demo_components();
        let failure_free = run(&graph, &CcConfig::default()).unwrap();
        let config = CcConfig {
            ft: FtConfig::optimistic(FailureScenario::none().fail_at(2, &[0, 1])),
            ..Default::default()
        };
        let failed = run(&graph, &config).unwrap();
        let ff_converged = failure_free.stats.gauge_series(common::CONVERGED);
        let f_converged = failed.stats.gauge_series(common::CONVERGED);
        assert!(
            f_converged[2] < ff_converged[2],
            "converged count must plummet at the failure superstep: {f_converged:?} vs {ff_converged:?}"
        );
        let ff_messages = failure_free.stats.counter_series(common::MESSAGES);
        let f_messages = failed.stats.counter_series(common::MESSAGES);
        assert!(
            f_messages[3] > *ff_messages.get(3).unwrap_or(&0),
            "messages must spike after the failure: {f_messages:?} vs {ff_messages:?}"
        );
    }

    #[test]
    fn all_strategies_except_ignore_are_correct() {
        let graph = generators::random_components(3, 5..12, 0.3, 11);
        for strategy in
            [Strategy::Optimistic, Strategy::Checkpoint { interval: 2 }, Strategy::Restart]
        {
            let config = CcConfig {
                ft: FtConfig {
                    strategy,
                    scenario: FailureScenario::none().fail_at(1, &[0]),
                    ..Default::default()
                },
                ..Default::default()
            };
            let result = run(&graph, &config).unwrap();
            assert_eq!(result.correct, Some(true), "strategy {strategy:?}");
            assert!(result.stats.converged);
        }
    }

    #[test]
    fn ignore_strategy_loses_vertices() {
        let graph = generators::demo_components();
        let config = CcConfig {
            ft: FtConfig::ignore(FailureScenario::none().fail_at(1, &[0, 1])),
            ..Default::default()
        };
        let result = run(&graph, &config).unwrap();
        assert!(result.labels.len() < 16, "lost vertices must stay lost");
        assert_eq!(result.correct, Some(false));
    }

    #[test]
    fn rollback_repeats_iterations() {
        let graph = generators::path(24);
        let config = CcConfig {
            ft: FtConfig::checkpoint(3, FailureScenario::none().fail_at(7, &[0])),
            ..Default::default()
        };
        let result = run(&graph, &config).unwrap();
        assert_eq!(result.correct, Some(true));
        // Rolled back from superstep 7 to checkpoint at logical iteration 6:
        // the run pays extra supersteps compared to its logical count.
        assert!(result.stats.supersteps() > result.stats.logical_iterations());
    }

    #[test]
    fn multiple_failures_still_converge() {
        let graph = generators::preferential_attachment(300, 2, 5);
        let config = CcConfig {
            ft: FtConfig::optimistic(
                FailureScenario::none().fail_at(1, &[0]).fail_at(3, &[2, 3]).fail_at(4, &[1]),
            ),
            ..Default::default()
        };
        let result = run(&graph, &config).unwrap();
        assert_eq!(result.correct, Some(true));
        assert_eq!(result.stats.failures().count(), 3);
    }

    #[test]
    fn plan_text_names_the_figure_1a_operators() {
        let text = plan_text(4);
        for name in ["label-to-neighbors", "candidate-label", "label-update", "FixComponents"] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
    }

    #[test]
    fn seeded_runs_reconverge_in_fewer_supersteps() {
        // Two disjoint 16-vertex paths; the "mutation" inserts the bridging
        // edge (15, 16). A cold run over the mutated graph propagates label
        // 0 across all 32 vertices; the seeded run starts from the two old
        // fixpoints and only re-labels the second path.
        let mut b = graphs::GraphBuilder::undirected(0);
        for v in 0..15u64 {
            b.add_edge(v, v + 1);
        }
        for v in 16..31u64 {
            b.add_edge(v, v + 1);
        }
        b.add_edge(15, 16);
        let mutated = b.build();
        let config = CcConfig::default();
        let cold = run(&mutated, &config).unwrap();
        assert_eq!(cold.correct, Some(true));

        // Fixpoint before the mutation: label 0 on 0..=15, label 16 on the
        // second path. Only the bridge endpoints need to propagate.
        let solution: Vec<Label> = (0..32).map(|v| (v, if v <= 15 { 0 } else { 16 })).collect();
        let seed = CcSeed { solution, workset: vec![(15, 0), (16, 16)] };
        let env = common::environment(config.parallelism, &config.ft);
        let built = build_seeded(&env, &mutated, &config, Some(&seed)).unwrap();
        let mut labels = built.result.collect().unwrap();
        labels.sort_unstable();
        assert_eq!(labels, cold.labels, "warm start must reach the cold fixpoint");
        let stats = built.stats.take().unwrap();
        assert!(stats.converged);
        assert!(
            stats.supersteps() < cold.stats.supersteps(),
            "seeded: {} supersteps, cold: {}",
            stats.supersteps(),
            cold.stats.supersteps()
        );
    }

    #[test]
    fn panic_at_injects_one_compensated_failure() {
        let graph = generators::path(24);
        let config = CcConfig {
            ft: FtConfig::optimistic(FailureScenario::none()),
            panic_at: Some(3),
            ..Default::default()
        };
        let result = run(&graph, &config).unwrap();
        assert_eq!(result.correct, Some(true));
        assert!(result.stats.converged);
        let failures: Vec<_> = result.stats.failures().collect();
        assert_eq!(failures.len(), 1, "the injected panic must surface as one failure");
        assert_eq!(failures[0].1.recovery, dataflow::stats::RecoveryKind::Compensated);
    }

    #[test]
    fn bulk_variant_matches_delta_variant() {
        let graph = generators::random_components(3, 4..10, 0.3, 77);
        let delta = run(&graph, &CcConfig::default()).unwrap();
        let bulk = run_bulk(&graph, &CcConfig::default()).unwrap();
        assert_eq!(bulk.labels, delta.labels);
        assert_eq!(bulk.correct, Some(true));
    }

    #[test]
    fn bulk_variant_recovers_optimistically() {
        let graph = generators::demo_components();
        let config = CcConfig {
            ft: FtConfig::optimistic(FailureScenario::none().fail_at(2, &[0, 1])),
            ..Default::default()
        };
        let result = run_bulk(&graph, &config).unwrap();
        assert_eq!(result.correct, Some(true));
        assert_eq!(result.stats.failures().count(), 1);
    }

    #[test]
    fn bulk_variant_does_more_message_work_on_skewed_convergence() {
        // §2.1's motivation: "in many cases parts of the intermediate state
        // converge at different speeds". A big star converges in two
        // iterations; the attached path takes ~64. The bulk mode keeps
        // recomputing the whole star for every path superstep, the delta
        // working set drops the star immediately.
        let graph = generators::disjoint_union(&[generators::star(2000), generators::path(64)]);
        let delta = run(&graph, &CcConfig::default()).unwrap();
        let bulk = run_bulk(&graph, &CcConfig::default()).unwrap();
        assert_eq!(bulk.labels, delta.labels);
        let delta_messages: u64 = delta.stats.counter_series(common::MESSAGES).iter().sum();
        let bulk_messages: u64 = bulk.stats.counter_series(common::MESSAGES).iter().sum();
        assert!(
            bulk_messages > 5 * delta_messages,
            "bulk {bulk_messages} vs delta {delta_messages}"
        );
    }
}
