//! Fixpoint algorithms on the mini dataflow engine, each with the
//! compensation function that makes it optimistically recoverable.
//!
//! The two algorithms of the demonstration:
//!
//! * [`connected_components`] — delta iteration (paper Figure 1a): the
//!   minimum label of each component diffuses along edges; the
//!   `FixComponents` compensation resets lost vertices to their initial
//!   labels and re-seeds propagation.
//! * [`pagerank`] — bulk iteration (paper Figure 1b): ranks are recomputed
//!   from neighbour contributions every superstep; the `FixRanks`
//!   compensation uniformly redistributes the lost probability mass so all
//!   ranks keep summing to one.
//!
//! Extension algorithms demonstrating the generality of the mechanism for
//! the "large class of fixpoint algorithms" the paper appeals to:
//!
//! * [`sssp`] — single-source shortest paths (delta iteration; monotone
//!   min-distance fixpoint, compensation resets to the initial +∞ state).
//! * [`reachability`] — multi-source reachability (delta iteration; a
//!   monotone boolean fixpoint, the simplest member of the class).
//! * [`kmeans`] — k-means clustering (bulk iteration; compensation re-seeds
//!   lost centroids near the global point mean).
//! * [`jacobi`] — Jacobi iteration for diagonally dominant linear systems
//!   (bulk iteration; the iteration matrix is a contraction, so resetting
//!   lost entries to the initial guess preserves convergence).
//! * [`als`] — low-rank matrix factorisation with Alternating Least Squares
//!   (bulk iteration; the third algorithm class of the underlying CIKM '13
//!   evaluation — compensation resets lost factor rows to their initial
//!   vectors and the sweep-monotone objective keeps decreasing).
//!
//! Every `run` function takes a [`common::FtConfig`] choosing the recovery
//! strategy (optimistic / checkpoint / restart / ignore) and a failure
//! scenario, and returns the algorithm output together with the engine's
//! per-superstep [`dataflow::stats::RunStats`] — the raw material for all of
//! the paper's plots.

#![warn(missing_docs)]

pub mod als;
pub mod common;
pub mod connected_components;
pub mod jacobi;
pub mod kmeans;
pub mod pagerank;
pub mod reachability;
pub mod sssp;

pub use common::FtConfig;
