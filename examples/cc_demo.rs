//! The Connected Components demonstration (paper §3.2, Figures 2–3),
//! terminal edition: step through every iteration of the small demo graph,
//! fail partitions of your choosing, and watch the `FixComponents`
//! compensation restore them.
//!
//! ```text
//! cargo run --release --example cc_demo [failure_superstep] [partition ...] [--journal <path>]
//! cargo run --release --example cc_demo 3 1 2     # fail partitions 1+2 at superstep 3
//! ```

use algos::common::{CONVERGED, MESSAGES};
use algos::connected_components::{run, CcConfig};
use algos::FtConfig;
use dataflow::partition::hash_partition;
use flowviz::chart::{ascii_chart, ChartOptions};
use flowviz::render::render_components;
use flowviz::table::run_summary;
use graphs::VertexId;
use optimistic_recovery::journal::JournalCapture;
use recovery::scenario::FailureScenario;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let capture = JournalCapture::take_from(&mut args).expect("--journal needs a value");
    let mut args = args.into_iter();
    let failure_superstep: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);
    let partitions: Vec<usize> = args.filter_map(|a| a.parse().ok()).collect();
    let partitions = if partitions.is_empty() { vec![1] } else { partitions };

    let graph = graphs::generators::demo_components();
    let parallelism = 4;
    println!(
        "Connected Components demo: {} vertices, {} edges, {} partitions",
        graph.num_vertices(),
        graph.num_edges(),
        parallelism
    );
    println!("failing partition(s) {partitions:?} at superstep {failure_superstep}\n");

    let mut config = CcConfig {
        parallelism,
        capture_history: true,
        ft: FtConfig::optimistic(FailureScenario::none().fail_at(failure_superstep, &partitions)),
        ..Default::default()
    };
    if let Some(capture) = &capture {
        config.ft.telemetry = capture.handle();
    }
    let result = run(&graph, &config).expect("run succeeds");

    // Replay the run iteration by iteration, like pressing "play" in the GUI.
    let history = result.history.as_ref().expect("history captured");
    for (superstep, snapshot) in history.iter().enumerate() {
        let stats = &result.stats.iterations[superstep];
        println!(
            "== superstep {superstep}: {} messages, {} vertices at their final component ==",
            stats.counter(MESSAGES),
            stats.gauge(CONVERGED).unwrap_or(0.0)
        );
        let lost: Vec<VertexId> = match &stats.failure {
            None => Vec::new(),
            Some(f) => graph
                .vertices()
                .filter(|v| f.lost_partitions.contains(&hash_partition(v, parallelism)))
                .collect(),
        };
        if let Some(f) = &stats.failure {
            println!(
                "   !! failure destroyed partition(s) {:?} ({} records) — FixComponents re-initialised them",
                f.lost_partitions, f.lost_records
            );
        }
        print!("{}", render_components(snapshot, &lost));
        println!();
    }

    println!("{}\n", run_summary(&result.stats));
    let markers: Vec<u32> = result.stats.failures().map(|(s, _)| s).collect();
    println!(
        "{}",
        ascii_chart(
            &result.stats.gauge_series(CONVERGED),
            &ChartOptions::titled("vertices converged to their final component")
                .with_markers(markers.clone())
        )
    );
    println!(
        "{}",
        ascii_chart(
            &result.stats.counter_series(MESSAGES).iter().map(|&m| m as f64).collect::<Vec<_>>(),
            &ChartOptions::titled("messages (candidate labels) per iteration")
                .with_markers(markers)
        )
    );
    println!("result correct: {:?}", result.correct);

    if let Some(capture) = capture {
        capture.finish_or_exit();
    }
}
