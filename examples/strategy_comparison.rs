//! Side-by-side comparison of every recovery strategy on all five fixpoint
//! algorithms — the one-screen summary of what this repository reproduces.
//!
//! ```text
//! cargo run --release --example strategy_comparison [--journal <path>]
//! ```
//!
//! With `--journal`, each Connected Components run writes its own journal
//! (the optimistic run at the given path, the other strategies as siblings
//! tagged with the strategy name) — ready for `optirec inspect diff`.

use algos::{als, connected_components, jacobi, kmeans, pagerank, sssp, FtConfig};
use flowviz::table::render_aligned;
use optimistic_recovery::journal::JournalCapture;
use recovery::checkpoint::CostModel;
use recovery::scenario::FailureScenario;
use recovery::strategy::Strategy;

fn strategies() -> Vec<Strategy> {
    vec![
        Strategy::Optimistic,
        Strategy::Checkpoint { interval: 3 },
        Strategy::Restart,
        Strategy::Ignore,
    ]
}

fn ft(strategy: Strategy) -> FtConfig {
    FtConfig {
        strategy,
        scenario: FailureScenario::none().fail_at(2, &[1]),
        checkpoint_cost: CostModel::instant(),
        checkpoint_on_disk: false,
        ..Default::default()
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let base_capture = JournalCapture::take_from(&mut args).expect("--journal needs a value");

    let graph = graphs::generators::preferential_attachment(1_000, 2, 7);
    let points = kmeans::generate_blobs(4, 60, 0.5, 7);
    let system = jacobi::random_diagonally_dominant(64, 4, 7);
    let ratings = als::generate_ratings(30, 24, 10, 4, 0.03, 7);

    println!("one failure of partition 1 (of 4) at superstep 2, every algorithm x strategy:\n");
    let mut table = vec![vec![
        "algorithm".to_string(),
        "strategy".to_string(),
        "supersteps".to_string(),
        "converged".to_string(),
        "correct".to_string(),
    ]];

    for strategy in strategies() {
        let capture = base_capture.as_ref().map(|base| match strategy {
            Strategy::Optimistic => JournalCapture::to_path(base.path().to_path_buf()),
            other => {
                let tag: String = other
                    .label()
                    .chars()
                    .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                    .collect();
                base.sibling(tag.trim_matches('_'))
            }
        });
        let mut cc_ft = ft(strategy);
        if let Some(capture) = &capture {
            cc_ft.telemetry = capture.handle();
        }
        let config = connected_components::CcConfig { ft: cc_ft, ..Default::default() };
        let r = connected_components::run(&graph, &config).expect("cc");
        table.push(vec![
            "connected-components".into(),
            strategy.label(),
            r.stats.supersteps().to_string(),
            r.stats.converged.to_string(),
            r.correct.map_or("-".into(), |c| c.to_string()),
        ]);
        if let Some(capture) = capture {
            capture.finish_or_exit();
        }
    }
    for strategy in strategies() {
        let config = pagerank::PrConfig { ft: ft(strategy), epsilon: 1e-6, ..Default::default() };
        let r = pagerank::run(&graph, &config).expect("pagerank");
        table.push(vec![
            "pagerank".into(),
            strategy.label(),
            r.stats.supersteps().to_string(),
            r.stats.converged.to_string(),
            r.l1_to_exact.map_or("-".into(), |l1| (l1 < 1e-2).to_string()),
        ]);
    }
    for strategy in strategies() {
        let config = sssp::SsspConfig { ft: ft(strategy), ..Default::default() };
        let r = sssp::run(&graph, &config).expect("sssp");
        table.push(vec![
            "sssp".into(),
            strategy.label(),
            r.stats.supersteps().to_string(),
            r.stats.converged.to_string(),
            r.correct.map_or("-".into(), |c| c.to_string()),
        ]);
    }
    for strategy in strategies() {
        let config = kmeans::KmConfig { ft: ft(strategy), ..Default::default() };
        let r = kmeans::run(&points, &config).expect("kmeans");
        table.push(vec![
            "kmeans".into(),
            strategy.label(),
            r.stats.supersteps().to_string(),
            r.stats.converged.to_string(),
            format!("objective {:.1}", r.objective),
        ]);
    }
    for strategy in strategies() {
        let config = jacobi::JacobiConfig { ft: ft(strategy), ..Default::default() };
        let r = jacobi::run(&system, &config).expect("jacobi");
        table.push(vec![
            "jacobi".into(),
            strategy.label(),
            r.stats.supersteps().to_string(),
            r.stats.converged.to_string(),
            format!("residual {:.1e}", r.residual),
        ]);
    }

    for strategy in strategies() {
        let config = als::AlsConfig { ft: ft(strategy), ..Default::default() };
        let r = als::run(&ratings, &config).expect("als");
        table.push(vec![
            "als".into(),
            strategy.label(),
            r.stats.supersteps().to_string(),
            r.stats.converged.to_string(),
            format!("rmse {:.3}", r.rmse),
        ]);
    }

    println!("{}", render_aligned(&table));
    println!(
        "note the `ignore` rows: Connected Components and SSSP converge to WRONG results\n\
         without a compensation function (lost vertices simply vanish), while the\n\
         self-stabilising algorithms (PageRank with teleport, Jacobi) pay extra\n\
         iterations instead. Optimistic recovery keeps every algorithm correct with\n\
         zero failure-free overhead."
    );
}
