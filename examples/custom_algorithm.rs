//! Building your *own* optimistically recoverable fixpoint algorithm on the
//! raw engine API — no `algos` helpers involved.
//!
//! The algorithm: iterative "degree-weighted heat diffusion" on a graph.
//! Each vertex holds a heat value; every superstep it keeps half its heat
//! and spreads the other half over its neighbours. Total heat is conserved,
//! so the natural compensation after a failure mirrors PageRank's FixRanks:
//! give the lost vertices an equal share of the missing heat.
//!
//! ```text
//! cargo run --release --example custom_algorithm [--journal <path>] [--mtbf <supersteps>]
//! ```
//!
//! By default a single failure strikes partition 0 at superstep 4. With
//! `--mtbf <supersteps>` the deterministic scenario is replaced by the
//! engine's seeded [`MtbfFailures`] model: failures arrive randomly with
//! the given mean gap, yet the schedule is reproducible run-to-run (fixed
//! seed), so the conservation invariant below is still checkable.

use dataflow::partition::hash_partition;
use dataflow::prelude::*;
use optimistic_recovery::journal::JournalCapture;
use recovery::optimistic::OptimisticBulkHandler;
use recovery::scenario::FailureScenario;

type Heat = (u64, f64);

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let capture = JournalCapture::take_from(&mut args).expect("--journal needs a value");
    let mtbf: Option<f64> = args.iter().position(|a| a == "--mtbf").map(|i| {
        let mean = args.get(i + 1).and_then(|v| v.parse().ok()).expect("--mtbf needs a number");
        args.drain(i..=i + 1);
        mean
    });

    let graph = graphs::generators::grid(8, 8);
    let n = graph.num_vertices();
    let parallelism = 4;

    // 1. Sources: all heat starts on vertex 0; the adjacency is a
    //    loop-invariant import. On the raw engine API, telemetry is
    //    installed on the environment config rather than an FtConfig.
    let mut env_config = dataflow::config::EnvConfig::new(parallelism);
    if let Some(capture) = &capture {
        env_config = env_config.with_telemetry(capture.handle());
    }
    let env = Environment::with_config(env_config);
    let initial: Vec<Heat> = (0..n as u64).map(|v| (v, if v == 0 { 1.0 } else { 0.0 })).collect();
    let heat0 = env.from_keyed_vec(initial, |h| h.0);
    let links = env.from_keyed_vec(graph.adjacency_rows(), |l| l.0);

    // 2. The iteration body: keep half, diffuse half.
    // Diffusion mixes geometrically slowly; run a fixed 50 supersteps
    // (the common choice for diffusion kernels) instead of a threshold.
    let mut iteration = BulkIteration::new(&heat0, 50);
    let links_in = iteration.import(&links);
    let heat = iteration.state();
    let with_links = heat.join(
        "attach-neighbors",
        &links_in,
        |h: &Heat| h.0,
        |l: &(u64, Vec<u64>)| l.0,
        |h, l| (h.0, h.1, l.1.clone()),
    );
    let kept = with_links.map("keep-half", |r: &(u64, f64, Vec<u64>)| (r.0, r.1 * 0.5));
    let spread = with_links
        .flat_map("spread-half", |&(_, heat, ref neighbors): &(u64, f64, Vec<u64>)| {
            if neighbors.is_empty() {
                return Vec::new();
            }
            let share = heat * 0.5 / neighbors.len() as f64;
            neighbors.iter().map(|&w| (w, share)).collect()
        })
        .measured("heat-packets");
    let next = kept.union("combine", &spread).reduce_by_key(
        "sum-heat",
        |h: &Heat| h.0,
        |a, b| (a.0, a.1 + b.1),
    );
    // 3. Fault tolerance: a closure is a full compensation function.
    //    Restore the conservation invariant exactly like FixRanks.
    let mut handler = OptimisticBulkHandler::new(
        move |state: &mut Partitions<Heat>, lost: &[usize], _iteration: u32| {
            let surviving: f64 = state.iter_records().map(|&(_, h)| h).sum();
            let lost_vertices: Vec<u64> =
                (0..n as u64).filter(|v| lost.contains(&hash_partition(v, parallelism))).collect();
            let share = (1.0 - surviving).max(0.0) / lost_vertices.len().max(1) as f64;
            for v in lost_vertices {
                let pid = hash_partition(&v, parallelism);
                state.partition_mut(pid).push((v, share));
            }
        },
    );
    if let Some(capture) = &capture {
        handler = handler.with_telemetry(capture.handle());
    }
    iteration.set_fault_handler(handler);
    match mtbf {
        Some(mean) => {
            iteration.set_failure_source(MtbfFailures::new(mean, 0xd1f_f05e).with_min_superstep(1))
        }
        None => iteration.set_failure_source(FailureScenario::none().fail_at(4, &[0]).to_source()),
    }
    iteration.set_observer(|_iter, state: &Partitions<Heat>, stats| {
        let total: f64 = state.iter_records().map(|&(_, h)| h).sum();
        stats.gauges.insert("total_heat".into(), total);
    });

    // 4. Close the loop, run, inspect.
    let (result, stats) = iteration.close(next);
    let mut heat: Vec<Heat> = result.collect().expect("run succeeds");
    heat.sort_by_key(|h| h.0);
    let stats = stats.take().expect("stats recorded");

    match mtbf {
        Some(mean) => println!(
            "heat diffusion over an 8x8 grid, MTBF failures (mean gap {mean} supersteps), \
             compensated\n"
        ),
        None => println!("heat diffusion over an 8x8 grid, failure at superstep 4, compensated\n"),
    }
    println!("supersteps: {} (fixed)  failures: {}", stats.supersteps(), stats.failures().count());
    for (superstep, total) in stats.gauge_series("total_heat").iter().enumerate() {
        assert!((total - 1.0).abs() < 1e-9, "heat leaked at superstep {superstep}");
    }
    println!("heat conservation invariant held at every superstep (sum == 1)");
    let (hottest, coldest) = (
        heat.iter().cloned().fold((0u64, f64::MIN), |a, b| if b.1 > a.1 { b } else { a }),
        heat.iter().cloned().fold((0u64, f64::MAX), |a, b| if b.1 < a.1 { b } else { a }),
    );
    println!("hottest vertex: {} ({:.5})", hottest.0, hottest.1);
    println!("coldest vertex: {} ({:.5})", coldest.0, coldest.1);

    if let Some(capture) = capture {
        capture.finish_or_exit();
    }
}
