//! The PageRank demonstration (paper §3.3, Figures 4–5), terminal edition:
//! vertex bars grow and shrink toward their true ranks; a failure destroys
//! partitions and `FixRanks` redistributes the lost probability mass.
//!
//! ```text
//! cargo run --release --example pagerank_demo [failure_superstep] [partition ...] [--journal <path>]
//! cargo run --release --example pagerank_demo 5 1    # the paper's scenario
//! ```

use algos::common::{CONVERGED, L1_DIFF, MESSAGES, RANK_SUM};
use algos::pagerank::{run, PrConfig};
use algos::FtConfig;
use dataflow::partition::hash_partition;
use flowviz::chart::{ascii_chart, ChartOptions};
use flowviz::render::render_ranks;
use flowviz::table::run_summary;
use graphs::VertexId;
use optimistic_recovery::journal::JournalCapture;
use recovery::scenario::FailureScenario;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let capture = JournalCapture::take_from(&mut args).expect("--journal needs a value");
    let mut args = args.into_iter();
    let failure_superstep: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(5);
    let partitions: Vec<usize> = args.filter_map(|a| a.parse().ok()).collect();
    let partitions = if partitions.is_empty() { vec![1] } else { partitions };

    let graph = graphs::generators::demo_pagerank();
    let parallelism = 4;
    println!(
        "PageRank demo: {} vertices, {} links, damping 0.85, {} partitions",
        graph.num_vertices(),
        graph.num_edges(),
        parallelism
    );
    println!("failing partition(s) {partitions:?} at superstep {failure_superstep}\n");

    let mut config = PrConfig {
        parallelism,
        capture_history: true,
        ft: FtConfig::optimistic(FailureScenario::none().fail_at(failure_superstep, &partitions)),
        ..Default::default()
    };
    if let Some(capture) = &capture {
        config.ft.telemetry = capture.handle();
    }
    let result = run(&graph, &config).expect("run succeeds");
    let history = result.history.as_ref().expect("history captured");

    // Show the interesting supersteps: start, around the failure, end.
    let interesting: Vec<usize> = {
        let last = history.len() - 1;
        let f = failure_superstep as usize;
        let mut picks = vec![0, f.saturating_sub(1), f, f + 1, last];
        picks.retain(|&s| s <= last);
        picks.dedup();
        picks
    };
    for superstep in interesting {
        let stats = &result.stats.iterations[superstep];
        println!(
            "== superstep {superstep}: rank sum {:.6}, L1 vs previous {:.6} ==",
            stats.gauge(RANK_SUM).unwrap_or(f64::NAN),
            stats.gauge(L1_DIFF).unwrap_or(f64::NAN),
        );
        let lost: Vec<VertexId> = match &stats.failure {
            None => Vec::new(),
            Some(f) => graph
                .vertices()
                .filter(|v| f.lost_partitions.contains(&hash_partition(v, parallelism)))
                .collect(),
        };
        if let Some(f) = &stats.failure {
            println!(
                "   !! failure destroyed partition(s) {:?} — FixRanks redistributed the lost mass",
                f.lost_partitions
            );
        }
        print!("{}", render_ranks(&history[superstep], &lost, 40));
        println!();
    }

    println!("{}\n", run_summary(&result.stats));
    let markers: Vec<u32> = result.stats.failures().map(|(s, _)| s).collect();
    println!(
        "{}",
        ascii_chart(
            &result.stats.gauge_series(CONVERGED),
            &ChartOptions::titled("vertices converged to their true PageRank")
                .with_markers(markers.clone())
        )
    );
    println!(
        "{}",
        ascii_chart(
            &result.stats.gauge_series(L1_DIFF),
            &ChartOptions::titled("L1 norm between consecutive rank estimates")
                .with_markers(markers.clone())
        )
    );
    println!(
        "{}",
        ascii_chart(
            &result.stats.counter_series(MESSAGES).iter().map(|&m| m as f64).collect::<Vec<_>>(),
            &ChartOptions::titled("rank contributions per iteration").with_markers(markers)
        )
    );
    println!(
        "final rank sum: {:.9}  |  L1 distance to exact ranks: {:.2e}",
        result.rank_sum,
        result.l1_to_exact.unwrap_or(f64::NAN)
    );

    if let Some(capture) = capture {
        capture.finish_or_exit();
    }
}
