//! Quickstart: run Connected Components with optimistic recovery, kill a
//! partition mid-run, and watch the compensation function bring the
//! computation "back on track".
//!
//! ```text
//! cargo run --release --example quickstart [--journal <path>]
//! ```

use algos::connected_components::{run, CcConfig};
use algos::FtConfig;
use flowviz::table::{run_stats_table, run_summary};
use optimistic_recovery::journal::JournalCapture;
use recovery::scenario::FailureScenario;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let capture = JournalCapture::take_from(&mut args).expect("--journal needs a value");

    // A small graph with three connected components.
    let graph = graphs::generators::demo_components();

    // Fail partition 1 (of 4) at the end of superstep 2; recover
    // optimistically with the FixComponents compensation function —
    // no checkpoints anywhere.
    let mut config = CcConfig {
        parallelism: 4,
        ft: FtConfig::optimistic(FailureScenario::none().fail_at(2, &[1])),
        ..Default::default()
    };
    if let Some(capture) = &capture {
        config.ft.telemetry = capture.handle();
    }

    let result = run(&graph, &config).expect("run succeeds");

    println!("final labels (vertex -> component):");
    for (v, label) in &result.labels {
        println!("  {v:>2} -> {label}");
    }
    println!("\ncomponents found: {}", result.num_components);
    println!("matches the exact union-find reference: {:?}", result.correct);
    println!("\nper-iteration statistics:");
    print!("{}", run_stats_table(&result.stats));
    println!("{}", run_summary(&result.stats));

    if let Some(capture) = capture {
        capture.finish_or_exit();
    }
}
