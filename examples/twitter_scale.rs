//! The demo's "larger graph derived from real-world data" scenario: since
//! the Twitter snapshot (41.7 M vertices) is neither shipped nor
//! laptop-sized, a preferential-attachment graph reproduces its heavy-tailed
//! degree distribution at a configurable scale. Progress is tracked via the
//! statistics plots only, exactly as the demo does for the large input.
//!
//! ```text
//! cargo run --release --example twitter_scale [vertices] [strategy] [--journal <path>]
//! cargo run --release --example twitter_scale 100000 optimistic
//! cargo run --release --example twitter_scale 50000 checkpoint:2
//! ```

use algos::common::{L1_DIFF, MESSAGES};
use algos::connected_components::{self, CcConfig};
use algos::pagerank::{self, PrConfig};
use algos::FtConfig;
use flowviz::chart::{ascii_chart, ChartOptions};
use flowviz::table::run_summary;
use optimistic_recovery::cli::parse_strategy;
use optimistic_recovery::journal::JournalCapture;
use recovery::checkpoint::CostModel;
use recovery::scenario::FailureScenario;
use recovery::strategy::Strategy;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // The CC run writes to the given journal; the PageRank run that follows
    // gets a sibling journal with `_pagerank` in the name.
    let cc_capture = JournalCapture::take_from(&mut args).expect("--journal needs a value");
    let pr_capture = cc_capture.as_ref().map(|c| c.sibling("pagerank"));
    let mut args = args.into_iter();
    let vertices: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(100_000);
    let strategy = parse_strategy(&args.next().unwrap_or_else(|| "optimistic".into()))
        .unwrap_or_else(|message| {
            eprintln!("{message}; using optimistic");
            Strategy::Optimistic
        });

    println!("generating Twitter-like graph ({vertices} vertices, preferential attachment)...");
    let graph = graphs::generators::preferential_attachment(vertices, 3, 2015);
    println!("{} vertices, {} edges", graph.num_vertices(), graph.num_edges());
    let degrees = graphs::generators::degree_sequence(&graph);
    let max_degree = degrees.iter().copied().max().unwrap_or(0);
    println!("max degree {max_degree} (heavy tail), strategy: {strategy}\n");
    println!("degree distribution (log2 buckets — note the heavy tail):");
    print!("{}", flowviz::log2_histogram(&degrees, 40));
    println!();

    let ft = FtConfig {
        strategy,
        scenario: FailureScenario::none().fail_at(2, &[3]).fail_at(5, &[1, 6]),
        checkpoint_cost: CostModel::distributed_fs(),
        checkpoint_on_disk: false,
        ..Default::default()
    };

    println!("== Connected Components (delta iteration) ==");
    let mut cc_ft = ft.clone();
    if let Some(capture) = &cc_capture {
        cc_ft.telemetry = capture.handle();
    }
    let config = CcConfig { parallelism: 8, ft: cc_ft, track_truth: false, ..Default::default() };
    let result = connected_components::run(&graph, &config).expect("cc run");
    println!("components: {}", result.num_components);
    println!("{}", run_summary(&result.stats));
    let markers: Vec<u32> = result.stats.failures().map(|(s, _)| s).collect();
    println!(
        "{}",
        ascii_chart(
            &result
                .stats
                .iterations
                .iter()
                .map(|i| i.workset_size.unwrap_or(0) as f64)
                .collect::<Vec<_>>(),
            &ChartOptions::titled("working-set size per iteration").with_markers(markers.clone()),
        )
    );
    println!(
        "{}",
        ascii_chart(
            &result.stats.counter_series(MESSAGES).iter().map(|&m| m as f64).collect::<Vec<_>>(),
            &ChartOptions::titled("messages per iteration").with_markers(markers),
        )
    );

    if let Some(capture) = cc_capture {
        capture.finish_or_exit();
    }

    println!("== PageRank (bulk iteration) ==");
    let mut pr_ft = ft;
    if let Some(capture) = &pr_capture {
        pr_ft.telemetry = capture.handle();
    }
    if let Strategy::IncrementalCheckpoint { full_interval } = pr_ft.strategy {
        // Incremental checkpointing is delta-only; bulk PageRank falls back
        // to full snapshots at the same cadence.
        pr_ft.strategy = Strategy::Checkpoint { interval: full_interval };
        println!("(incremental is delta-only: PageRank uses checkpoint({full_interval}))");
    }
    let config = PrConfig {
        parallelism: 8,
        epsilon: 1e-6,
        ft: pr_ft,
        track_truth: false,
        ..Default::default()
    };
    let result = pagerank::run(&graph, &config).expect("pagerank run");
    println!("rank sum: {:.9}", result.rank_sum);
    let mut top = result.ranks.clone();
    top.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("top-10 vertices by rank:");
    for (v, rank) in top.iter().take(10) {
        println!("  v{v:<8} {rank:.6}  (degree {})", graph.degree(*v));
    }
    println!("{}", run_summary(&result.stats));
    let markers: Vec<u32> = result.stats.failures().map(|(s, _)| s).collect();
    println!(
        "{}",
        ascii_chart(
            &result.stats.gauge_series(L1_DIFF),
            &ChartOptions::titled("L1 norm between consecutive rank estimates")
                .with_markers(markers),
        )
    );

    if let Some(capture) = pr_capture {
        capture.finish_or_exit();
    }
}
