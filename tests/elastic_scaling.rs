//! Elastic cluster end-to-end: planned rescales through the `optirec`
//! binary's worker processes must be invisible in the result — a cluster
//! that grows 2→4 and shrinks back mid-computation converges to exactly the
//! fixpoint of a static run (bitwise for CC, 1e-6 for PageRank), the moved
//! partitions ride the recovery reship path, and the journal bills the
//! whole thing as *planned* work, separate from failure recovery.

use std::process::Command;
use std::sync::Arc;
use std::time::Duration;

use cluster::{run_cluster, run_local, ClusterConfig, ClusterStrategy, KillPlan, ScaleEvent};
use graphs::{Graph, GraphBuilder};
use proptest::prelude::*;
use telemetry::{JournalEvent, MemorySink, SinkHandle};

fn optirec() -> &'static str {
    env!("CARGO_BIN_EXE_optirec")
}

/// Cluster configuration whose workers are `optirec worker` subprocesses.
fn optirec_config(workers: usize, parallelism: usize, max_iterations: u32) -> ClusterConfig {
    let mut cfg = ClusterConfig::new(workers, parallelism, max_iterations);
    cfg.worker_cmd = vec![optirec().to_string(), "worker".to_string()];
    cfg.heartbeat_interval = Duration::from_millis(20);
    cfg.heartbeat_timeout = Duration::from_millis(500);
    cfg.step_timeout = Duration::from_secs(10);
    cfg
}

fn cc_graph() -> Graph {
    let mut b = GraphBuilder::undirected(24);
    for start in [0u64, 8, 16] {
        for v in start..start + 7 {
            b.add_edge(v, v + 1);
        }
    }
    b.build()
}

fn pagerank_graph() -> Graph {
    let mut b = GraphBuilder::directed(20);
    for v in 0..20u64 {
        b.add_edge(v, (v + 1) % 20);
    }
    for v in (0..20u64).step_by(3) {
        b.add_edge(v, (v + 7) % 20);
    }
    b.build()
}

#[test]
fn cc_scale_up_then_down_matches_the_static_fixpoint_bitwise() {
    let graph = cc_graph();
    let cfg = optirec_config(2, 4, 60)
        .with_scale_event(ScaleEvent { superstep: 2, workers: 4 })
        .with_scale_event(ScaleEvent { superstep: 4, workers: 2 });
    let sink = Arc::new(MemorySink::new());
    let handle = SinkHandle::new(sink.clone());
    let elastic = run_cluster("cc", &graph, cfg, handle.clone()).unwrap();
    handle.flush();

    let baseline = run_local("cc", &graph, 4, 60, SinkHandle::disabled()).unwrap();
    assert_eq!(elastic.values, baseline.values, "rescales must not change the fixpoint");
    assert!(elastic.stats.converged);
    assert_eq!(elastic.stats.failures().count(), 0, "a planned rescale is not a failure");

    // The journal records the whole round trip: two joiners on the way up,
    // two partitions moved per rescale (the minimal-move plan for 4 pids
    // going 2→4→2), and every reship carries bytes.
    let events = sink.events();
    let joined =
        events.iter().filter(|event| matches!(event, JournalEvent::WorkerJoined { .. })).count();
    assert_eq!(joined, 2, "scale-up 2→4 spawns exactly two joiners");
    let completed: Vec<(usize, u64)> = events
        .iter()
        .filter_map(|event| match event {
            JournalEvent::RebalanceCompleted { moved_partitions, reshipped_bytes, .. } => {
                Some((*moved_partitions, *reshipped_bytes))
            }
            _ => None,
        })
        .collect();
    assert_eq!(completed.len(), 2, "one RebalanceCompleted per scale event");
    for &(moved, bytes) in &completed {
        assert_eq!(moved, 2, "minimal-move plan relocates exactly the surplus");
        assert!(bytes > 0, "moved partitions re-ship real state");
    }
}

#[test]
fn pagerank_rescale_stays_within_tolerance_of_the_static_run() {
    let graph = pagerank_graph();
    let cfg = optirec_config(2, 4, 300)
        .with_scale_event(ScaleEvent { superstep: 3, workers: 4 })
        .with_scale_event(ScaleEvent { superstep: 6, workers: 2 });
    let elastic = run_cluster("pagerank", &graph, cfg, SinkHandle::disabled()).unwrap();
    let baseline = run_local("pagerank", &graph, 4, 300, SinkHandle::disabled()).unwrap();
    assert!(elastic.stats.converged);
    for (&(v, a), &(_, b)) in elastic.values.iter().zip(&baseline.values) {
        let (a, b) = (f64::from_bits(a), f64::from_bits(b));
        assert!((a - b).abs() < 1e-6, "vertex {v}: {a} vs baseline {b}");
    }
}

#[test]
fn a_kill_landing_during_a_rebalance_recovers_under_every_strategy() {
    // The kill targets worker 3 at the same chronological superstep the
    // cluster grows 2→4: the rescale fires at the barrier, then the brand
    // new worker is SIGKILLed while its first superstep is in flight.
    let graph = cc_graph();
    let baseline = run_local("cc", &graph, 4, 60, SinkHandle::disabled()).unwrap();
    let strategies = [
        ClusterStrategy::Optimistic,
        ClusterStrategy::Checkpoint { interval: 2 },
        ClusterStrategy::AsyncSnapshot { interval: 2 },
        ClusterStrategy::Restart,
    ];
    for strategy in strategies {
        let cfg = optirec_config(2, 4, 60)
            .with_strategy(strategy)
            .with_scale_event(ScaleEvent { superstep: 2, workers: 4 })
            .with_kill(KillPlan { superstep: 2, worker: 3 });
        let run = run_cluster("cc", &graph, cfg, SinkHandle::disabled()).unwrap();
        assert_eq!(run.values, baseline.values, "{strategy:?} diverged after kill-in-rebalance");
        assert!(run.stats.converged, "{strategy:?} did not converge");
        assert!(run.stats.failures().count() >= 1, "{strategy:?} swallowed the kill");
    }
}

proptest! {
    // Every case spawns real worker processes; keep the case count low.
    #![proptest_config(ProptestConfig { cases: 3, .. ProptestConfig::default() })]

    #[test]
    fn cc_reaches_the_static_fixpoint_under_seeded_scale_plans(
        first in 1u32..4,
        gap in 1u32..3,
        up in 3usize..5,
        down in 1usize..3,
    ) {
        let graph = cc_graph();
        let cfg = optirec_config(2, 4, 60)
            .with_scale_event(ScaleEvent { superstep: first, workers: up })
            .with_scale_event(ScaleEvent { superstep: first + gap, workers: down });
        let run = run_cluster("cc", &graph, cfg, SinkHandle::disabled()).unwrap();
        let baseline = run_local("cc", &graph, 4, 60, SinkHandle::disabled()).unwrap();
        prop_assert_eq!(&run.values, &baseline.values);
        prop_assert!(run.stats.converged);
    }
}

#[test]
fn serve_scale_verb_rescales_the_next_commit_and_bills_it_as_planned() {
    let dir = std::env::temp_dir().join(format!("optirec_elastic_serve_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let replay = dir.join("session.replay");
    let journal = dir.join("serve_journal.jsonl");
    // An operator scales the serving cluster to 4 workers, then commits a
    // batch: the epoch starts on the bootstrap membership (2 workers) and
    // rescales at its first barrier.
    std::fs::write(&replay, "scale 4\n- 5 6\ncommit\nget 9\nquit\n").unwrap();

    let output = Command::new(optirec())
        .args([
            "serve",
            "cc",
            "--graph",
            "path:12",
            "--min-workers",
            "2",
            "--max-workers",
            "4",
            "--replay",
        ])
        .arg(&replay)
        .arg("--journal")
        .arg(&journal)
        .output()
        .expect("spawn optirec serve");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(output.status.success(), "stdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(stdout.contains("elastic: epochs run on 2..=4 worker processes"), "{stdout}");
    assert!(stdout.contains("ok scale target 4"), "{stdout}");
    assert!(stdout.contains("ok label 6"), "the split half takes its own minimum\n{stdout}");

    let text = std::fs::read_to_string(&journal).expect("journal written");
    assert!(text.contains("\"event\":\"RebalanceStarted\""), "{text}");
    assert!(text.contains("\"event\":\"WorkerJoined\""), "{text}");
    assert!(text.contains("\"event\":\"RebalanceCompleted\""), "{text}");

    // `inspect recovery` bills the rescale as planned reships, not outages.
    let inspect = Command::new(optirec())
        .args(["inspect", "recovery", "--journal"])
        .arg(&journal)
        .output()
        .expect("spawn optirec inspect");
    let report = String::from_utf8_lossy(&inspect.stdout);
    assert!(inspect.status.success(), "{report}");
    assert!(report.contains("planned rescales:"), "{report}");
    assert!(report.contains("rescale 2->4 workers"), "{report}");

    std::fs::remove_dir_all(&dir).ok();
}
