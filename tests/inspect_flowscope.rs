//! End-to-end flowscope inspection: run real algorithms under a capturing
//! sink, then load the artifacts back through the `flowscope` readers and
//! assert on the analyses `optirec inspect` exposes — delta termination on
//! an empty workset, report reconciliation, convergence rendering with
//! recovery overlays, and byte-identical round-trips of checked-in
//! baselines.

use std::path::Path;
use std::sync::Arc;

use algos::connected_components::{self, CcConfig};
use algos::FtConfig;
use flowscope::load::parse_journal;
use flowscope::RunModel;
use recovery::scenario::FailureScenario;
use telemetry::{JournalEvent, MemorySink, RunReport, SinkHandle};

fn cc_journal(ft: FtConfig) -> (Arc<MemorySink>, dataflow::stats::RunStats) {
    let sink = Arc::new(MemorySink::new());
    let config = CcConfig {
        parallelism: 4,
        ft: ft.with_telemetry(SinkHandle::new(sink.clone())),
        ..Default::default()
    };
    let graph = graphs::generators::demo_components();
    let result = connected_components::run(&graph, &config).expect("cc run");
    (sink, result.stats)
}

/// Workset sizes per superstep, from the journal's `SuperstepCompleted`
/// events (delta iterations always report one).
fn worksets(events: &[JournalEvent]) -> Vec<u64> {
    events
        .iter()
        .filter_map(|e| match e {
            JournalEvent::SuperstepCompleted { workset_size, .. } => *workset_size,
            _ => None,
        })
        .collect()
}

#[test]
fn delta_journal_terminates_early_on_empty_workset() {
    // Failure-free: the delta iteration must stop as soon as the workset
    // drains, well before the max-iteration bound, and the workset must
    // shrink monotonically to zero.
    let (sink, stats) = cc_journal(FtConfig::default());
    let journal = parse_journal(&sink.journal_lines()).expect("parse own journal");
    assert_eq!(journal.skipped, 0);

    let sizes = worksets(&journal.events);
    assert_eq!(sizes.len() as u32, stats.supersteps());
    assert!((sizes.len() as u32) < 200, "terminated well before the iteration bound");
    assert_eq!(*sizes.last().unwrap(), 0, "final superstep drains the workset");
    assert!(
        sizes.windows(2).all(|w| w[1] <= w[0]),
        "failure-free workset shrinks monotonically: {sizes:?}"
    );

    // The convergence samples agree with the workset record.
    let model = RunModel::from_events(&journal.events);
    assert!(model.converged);
    for row in &model.rows {
        let sample = row.sample.as_ref().expect("delta runs sample every superstep");
        let workset = sample.workset_per_partition.as_ref().expect("delta samples carry worksets");
        let per_partition: u64 = workset.iter().sum();
        assert_eq!(Some(per_partition), row.workset_size, "superstep {}", row.superstep);
    }

    // Report reconciliation: the journal-derived report matches RunStats.
    let report = RunReport::from_sink(&sink);
    let diffs = flowviz::reconcile(&report, &stats);
    assert!(diffs.is_empty(), "journal disagrees with RunStats: {diffs:#?}");
}

#[test]
fn workset_bumps_only_at_compensated_failures() {
    // With a failure, monotonicity may break — but only at supersteps where
    // the journal records a recovery action.
    let (sink, _) = cc_journal(FtConfig::optimistic(FailureScenario::none().fail_at(2, &[1])));
    let journal = parse_journal(&sink.journal_lines()).expect("parse");
    let model = RunModel::from_events(&journal.events);
    let failed = model.failure_supersteps();
    assert_eq!(failed, vec![2]);

    let sizes = worksets(&journal.events);
    for (i, w) in sizes.windows(2).enumerate() {
        let superstep = (i + 1) as u32;
        // A failure at superstep 2 perturbs the state the *next* superstep
        // recomputes from, so growth is only legal right after it.
        if w[1] > w[0] {
            assert!(
                failed.contains(&(superstep - 1)) || failed.contains(&superstep),
                "workset grew at superstep {superstep} with no failure nearby: {sizes:?}"
            );
        }
    }
    assert_eq!(*sizes.last().unwrap(), 0);
}

#[test]
fn convergence_view_renders_failure_and_compensation_markers() {
    let (sink, _) = cc_journal(FtConfig::optimistic(FailureScenario::none().fail_at(3, &[1])));
    let journal = parse_journal(&sink.journal_lines()).expect("parse");
    let model = RunModel::from_events(&journal.events);
    assert_eq!(model.failure_supersteps(), vec![3]);
    assert_eq!(model.compensation_supersteps(), vec![3]);

    let view = flowscope::render_convergence(&model);
    assert!(view.contains("failures at supersteps: [3]"), "{view}");
    assert!(view.contains("compensations at supersteps: [3]"), "{view}");
    assert!(view.contains("elements changed per superstep"), "{view}");
    assert!(view.contains("working-set size per superstep"), "{view}");
    assert!(view.contains("(! = failure)"), "{view}");
    assert!(view.contains("(c = compensation, r = rollback/restart)"), "{view}");
}

#[test]
fn checked_in_baseline_round_trips_byte_identically() {
    // The committed figure-3 journal is the CI diff baseline; the loader
    // must reproduce it byte for byte (the replay guarantee extends to
    // ConvergenceSample events).
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("results/figure3_cc_small_journal.jsonl");
    let text = std::fs::read_to_string(&path).expect("read checked-in baseline");
    let journal = parse_journal(&text).expect("parse baseline");
    assert_eq!(journal.skipped, 0, "baseline contains only known event kinds");
    assert!(
        journal.events.iter().any(|e| e.kind() == "ConvergenceSample"),
        "baseline journal carries convergence samples"
    );
    let replayed: String = journal.events.iter().map(|e| format!("{}\n", e.to_json())).collect();
    assert_eq!(replayed, text, "loader round-trips the baseline byte-identically");
}
