//! End-to-end cluster recovery through the `optirec` binary: the coordinator
//! spawns `optirec worker` processes, SIGKILLs one mid-iteration, and the
//! run recovers via optimistic compensation to exactly the failure-free
//! result. The CLI path additionally writes a journal whose worker events
//! `optirec inspect timeline` renders.

use std::process::Command;
use std::time::Duration;

use cluster::{run_cluster, run_local, ClusterConfig, KillPlan};
use graphs::GraphBuilder;
use telemetry::SinkHandle;

fn optirec() -> &'static str {
    env!("CARGO_BIN_EXE_optirec")
}

/// Cluster configuration whose workers are `optirec worker` subprocesses.
fn optirec_config(workers: usize, parallelism: usize, max_iterations: u32) -> ClusterConfig {
    let mut cfg = ClusterConfig::new(workers, parallelism, max_iterations);
    cfg.worker_cmd = vec![optirec().to_string(), "worker".to_string()];
    cfg.heartbeat_interval = Duration::from_millis(20);
    cfg.heartbeat_timeout = Duration::from_millis(500);
    cfg
}

fn cc_graph() -> graphs::Graph {
    let mut b = GraphBuilder::undirected(24);
    for start in [0u64, 8, 16] {
        for v in start..start + 7 {
            b.add_edge(v, v + 1);
        }
    }
    b.build()
}

fn pagerank_graph() -> graphs::Graph {
    let mut b = GraphBuilder::directed(20);
    for v in 0..20u64 {
        b.add_edge(v, (v + 1) % 20);
    }
    for v in (0..20u64).step_by(3) {
        b.add_edge(v, (v + 7) % 20);
    }
    b.build()
}

#[test]
fn optirec_worker_subcommand_recovers_a_sigkilled_cc_run() {
    let graph = cc_graph();
    let mut cfg = optirec_config(2, 4, 60);
    cfg.kill = Some(KillPlan { superstep: 2, worker: 1 });
    let cluster = run_cluster("cc", &graph, cfg, SinkHandle::disabled()).unwrap();
    let baseline = run_local("cc", &graph, 4, 60, SinkHandle::disabled()).unwrap();
    assert_eq!(cluster.values, baseline.values, "compensation must reach the exact baseline");
    assert!(cluster.stats.converged);
    assert_eq!(cluster.stats.failures().count(), 1);
}

#[test]
fn optirec_worker_subcommand_recovers_a_sigkilled_pagerank_run() {
    let graph = pagerank_graph();
    let mut cfg = optirec_config(2, 4, 300);
    cfg.kill = Some(KillPlan { superstep: 3, worker: 0 });
    let cluster = run_cluster("pagerank", &graph, cfg, SinkHandle::disabled()).unwrap();
    let baseline = run_local("pagerank", &graph, 4, 300, SinkHandle::disabled()).unwrap();
    assert!(cluster.stats.converged);
    for (&(v, a), &(_, b)) in cluster.values.iter().zip(&baseline.values) {
        let (a, b) = (f64::from_bits(a), f64::from_bits(b));
        assert!((a - b).abs() < 1e-6, "vertex {v}: {a} vs baseline {b}");
    }
}

#[test]
fn cli_cluster_run_journals_worker_events_and_timeline_renders_them() {
    let dir = std::env::temp_dir().join(format!("optirec_cluster_cli_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let journal = dir.join("cc_journal.jsonl");

    let output = Command::new(optirec())
        .args([
            "cc",
            "--cluster",
            "2",
            "--kill",
            "2:1",
            "--parallelism",
            "4",
            "--max-iterations",
            "60",
            "--journal",
        ])
        .arg(&journal)
        .output()
        .expect("spawn optirec");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(output.status.success(), "stdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(stdout.contains("worker processes"), "{stdout}");
    assert!(stdout.contains("components: 3"), "{stdout}");

    let text = std::fs::read_to_string(&journal).expect("journal written");
    assert!(text.contains("\"event\":\"WorkerLost\""), "{text}");
    assert!(text.contains("\"event\":\"WorkerRejoined\""), "{text}");
    assert!(text.contains("\"event\":\"CompensationInvoked\""), "{text}");

    let inspect = Command::new(optirec())
        .args(["inspect", "timeline", "--journal"])
        .arg(&journal)
        .output()
        .expect("spawn optirec inspect");
    let timeline = String::from_utf8_lossy(&inspect.stdout);
    assert!(inspect.status.success(), "{timeline}");
    assert!(timeline.contains("worker 1 LOST p[1, 3]"), "{timeline}");
    assert!(timeline.contains("worker 1 rejoined"), "{timeline}");
    assert!(timeline.contains("compensate["), "{timeline}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_rejects_cluster_misuse_with_guidance() {
    // --kill without --cluster must fail fast, before any process spawns.
    let output = Command::new(optirec()).args(["cc", "--kill", "2:1"]).output().unwrap();
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("--cluster"), "{stderr}");

    // Algorithms not compiled into the worker binary are named in the error.
    let output = Command::new(optirec()).args(["kmeans", "--cluster", "2"]).output().unwrap();
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("cc and pagerank"), "{stderr}");
}
