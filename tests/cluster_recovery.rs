//! End-to-end cluster recovery through the `optirec` binary: the coordinator
//! spawns `optirec worker` processes, SIGKILLs one mid-iteration, and the
//! run recovers via optimistic compensation to exactly the failure-free
//! result. The CLI path additionally writes a journal whose worker events
//! `optirec inspect timeline` renders.

use std::process::Command;
use std::time::Duration;

use cluster::{run_cluster, run_local, ClusterConfig, KillPlan};
use graphs::GraphBuilder;
use telemetry::SinkHandle;

fn optirec() -> &'static str {
    env!("CARGO_BIN_EXE_optirec")
}

/// Cluster configuration whose workers are `optirec worker` subprocesses.
fn optirec_config(workers: usize, parallelism: usize, max_iterations: u32) -> ClusterConfig {
    let mut cfg = ClusterConfig::new(workers, parallelism, max_iterations);
    cfg.worker_cmd = vec![optirec().to_string(), "worker".to_string()];
    cfg.heartbeat_interval = Duration::from_millis(20);
    cfg.heartbeat_timeout = Duration::from_millis(500);
    cfg
}

fn cc_graph() -> graphs::Graph {
    let mut b = GraphBuilder::undirected(24);
    for start in [0u64, 8, 16] {
        for v in start..start + 7 {
            b.add_edge(v, v + 1);
        }
    }
    b.build()
}

fn pagerank_graph() -> graphs::Graph {
    let mut b = GraphBuilder::directed(20);
    for v in 0..20u64 {
        b.add_edge(v, (v + 1) % 20);
    }
    for v in (0..20u64).step_by(3) {
        b.add_edge(v, (v + 7) % 20);
    }
    b.build()
}

#[test]
fn optirec_worker_subcommand_recovers_a_sigkilled_cc_run() {
    let graph = cc_graph();
    let mut cfg = optirec_config(2, 4, 60);
    cfg = cfg.with_kill(KillPlan { superstep: 2, worker: 1 });
    let cluster = run_cluster("cc", &graph, cfg, SinkHandle::disabled()).unwrap();
    let baseline = run_local("cc", &graph, 4, 60, SinkHandle::disabled()).unwrap();
    assert_eq!(cluster.values, baseline.values, "compensation must reach the exact baseline");
    assert!(cluster.stats.converged);
    assert_eq!(cluster.stats.failures().count(), 1);
}

#[test]
fn optirec_worker_subcommand_recovers_a_sigkilled_pagerank_run() {
    let graph = pagerank_graph();
    let mut cfg = optirec_config(2, 4, 300);
    cfg = cfg.with_kill(KillPlan { superstep: 3, worker: 0 });
    let cluster = run_cluster("pagerank", &graph, cfg, SinkHandle::disabled()).unwrap();
    let baseline = run_local("pagerank", &graph, 4, 300, SinkHandle::disabled()).unwrap();
    assert!(cluster.stats.converged);
    for (&(v, a), &(_, b)) in cluster.values.iter().zip(&baseline.values) {
        let (a, b) = (f64::from_bits(a), f64::from_bits(b));
        assert!((a - b).abs() < 1e-6, "vertex {v}: {a} vs baseline {b}");
    }
}

#[test]
fn cli_cluster_run_journals_worker_events_and_timeline_renders_them() {
    let dir = std::env::temp_dir().join(format!("optirec_cluster_cli_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let journal = dir.join("cc_journal.jsonl");

    let output = Command::new(optirec())
        .args([
            "cc",
            "--cluster",
            "2",
            "--kill",
            "2:1",
            "--parallelism",
            "4",
            "--max-iterations",
            "60",
            "--journal",
        ])
        .arg(&journal)
        .output()
        .expect("spawn optirec");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(output.status.success(), "stdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(stdout.contains("worker processes"), "{stdout}");
    assert!(stdout.contains("components: 3"), "{stdout}");

    let text = std::fs::read_to_string(&journal).expect("journal written");
    assert!(text.contains("\"event\":\"WorkerLost\""), "{text}");
    assert!(text.contains("\"event\":\"WorkerRejoined\""), "{text}");
    assert!(text.contains("\"event\":\"CompensationInvoked\""), "{text}");

    let inspect = Command::new(optirec())
        .args(["inspect", "timeline", "--journal"])
        .arg(&journal)
        .output()
        .expect("spawn optirec inspect");
    let timeline = String::from_utf8_lossy(&inspect.stdout);
    assert!(inspect.status.success(), "{timeline}");
    assert!(timeline.contains("worker 1 LOST p[1, 3]"), "{timeline}");
    assert!(timeline.contains("worker 1 rejoined"), "{timeline}");
    assert!(timeline.contains("compensate["), "{timeline}");

    std::fs::remove_dir_all(&dir).ok();
}

/// Zero every digit run that follows a `_ns":` key so journals from two
/// runs can be compared byte-for-byte. Worker-side span durations and
/// recovery clocks are the only wall-clock (hence nondeterministic)
/// fields a journal contains; everything else must match exactly.
fn normalize_ns(text: &str) -> String {
    let bytes = text.as_bytes();
    let mut out = String::with_capacity(text.len());
    let mut i = 0;
    while i < bytes.len() {
        out.push(bytes[i] as char);
        i += 1;
        if out.ends_with("_ns\":") {
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            if i > start {
                out.push('0');
            }
        }
    }
    out
}

fn cli_cluster_run(journal: &std::path::Path, extra: &[&str]) -> std::process::Output {
    let mut args =
        vec!["cc", "--cluster", "2", "--parallelism", "4", "--max-iterations", "60", "--journal"];
    args.extend_from_slice(extra);
    let mut cmd = Command::new(optirec());
    // `--journal` takes the path as the next arg; splice it in before extras.
    cmd.args(&args[..8]).arg(journal).args(&args[8..]);
    cmd.output().expect("spawn optirec")
}

#[test]
fn failure_free_cluster_journals_are_deterministic_modulo_clocks() {
    let dir = std::env::temp_dir().join(format!("optirec_cluster_det_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let (a, b) = (dir.join("run_a.jsonl"), dir.join("run_b.jsonl"));

    for journal in [&a, &b] {
        let output = cli_cluster_run(journal, &[]);
        assert!(output.status.success(), "stderr:\n{}", String::from_utf8_lossy(&output.stderr));
    }

    let (text_a, text_b) =
        (std::fs::read_to_string(&a).unwrap(), std::fs::read_to_string(&b).unwrap());
    assert!(text_a.contains("\"event\":\"WorkerSpan\""), "{text_a}");
    assert_eq!(
        normalize_ns(&text_a),
        normalize_ns(&text_b),
        "identical failure-free cluster runs must journal identically modulo clocks"
    );

    // Round-trip: both journals load cleanly and fold to the same shape.
    for journal in [&a, &b] {
        let loaded = flowscope::load_journal(journal).expect("journal loads");
        assert_eq!(loaded.skipped, 0, "no unknown lines in {}", journal.display());
        let model = flowscope::RunModel::from_events(&loaded.events);
        assert!(model.converged);
        assert_eq!(model.span_workers(), vec![0, 1], "both workers reported spans");
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn merged_journal_tags_worker_spans_and_inspect_recovery_bills_the_kill() {
    let dir = std::env::temp_dir().join(format!("optirec_cluster_bill_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let journal = dir.join("kill_journal.jsonl");

    let output = cli_cluster_run(&journal, &["--kill", "2:1"]);
    assert!(output.status.success(), "stderr:\n{}", String::from_utf8_lossy(&output.stderr));

    // Every worker's spans survive the merge, tagged with their origin.
    let text = std::fs::read_to_string(&journal).expect("journal written");
    for worker in 0..2 {
        assert!(
            text.lines().any(|line| line.starts_with("{\"event\":\"WorkerSpan\"")
                && line.contains(&format!("\"worker\":{worker},"))),
            "no WorkerSpan line for worker {worker} in:\n{text}"
        );
    }
    assert!(text.contains("\"event\":\"RecoveryCost\""), "{text}");
    // Wall clocks tick: detection latency and re-shipped state are nonzero.
    assert!(!text.contains("\"detect_ns\":0,"), "{text}");
    assert!(!text.contains("\"reshipped_bytes\":0}"), "{text}");

    let inspect = Command::new(optirec())
        .args(["inspect", "recovery", "--journal"])
        .arg(&journal)
        .output()
        .expect("spawn optirec inspect recovery");
    let report = String::from_utf8_lossy(&inspect.stdout);
    assert!(inspect.status.success(), "{report}");
    assert!(report.contains("1 failure(s), 1 worker outage(s)"), "{report}");
    assert!(report.contains(" w1 "), "{report}");
    assert!(report.contains("detect["), "{report}");
    assert!(report.contains("recomputed 1 superstep(s)"), "{report}");
    assert!(!report.contains("reshipped        0B"), "{report}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn inspect_diff_scoreboards_optimistic_against_async_snapshot_under_one_kill() {
    let dir = std::env::temp_dir().join(format!("optirec_cluster_board_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let (optimistic, snapshotting) = (dir.join("optimistic.jsonl"), dir.join("snapshot.jsonl"));

    // The same seeded kill, two strategies. Superstep 5 gives the
    // async-snapshot side time to complete epoch 0 (interval 1, 4 chunks).
    let output = cli_cluster_run(&optimistic, &["--chaos", "kill@5:1"]);
    assert!(output.status.success(), "stderr:\n{}", String::from_utf8_lossy(&output.stderr));
    let output =
        cli_cluster_run(&snapshotting, &["--chaos", "kill@5:1", "--strategy", "async-snapshot:1"]);
    assert!(output.status.success(), "stderr:\n{}", String::from_utf8_lossy(&output.stderr));

    let text = std::fs::read_to_string(&snapshotting).unwrap();
    assert!(text.contains("\"event\":\"SnapshotBarrierCompleted\""), "{text}");
    assert!(text.contains("\"event\":\"ChaosInjected\""), "{text}");
    assert!(text.contains("\"event\":\"CheckpointRestored\""), "{text}");
    assert!(text.contains("\"event\":\"RecoveryCost\""), "{text}");

    // `inspect recovery` bills the chaos plane and the snapshot overhead.
    let inspect = Command::new(optirec())
        .args(["inspect", "recovery", "--journal"])
        .arg(&snapshotting)
        .output()
        .expect("spawn optirec inspect recovery");
    let report = String::from_utf8_lossy(&inspect.stdout);
    assert!(inspect.status.success(), "{report}");
    assert!(report.contains("chaos plane: 1 injection(s)"), "{report}");
    assert!(report.contains("chaos kill w1"), "{report}");
    assert!(report.contains("epoch(s) completed"), "{report}");

    // `inspect diff` becomes the strategy-vs-strategy scoreboard: one
    // recovery-cost row pair per axis, for both runs.
    let inspect = Command::new(optirec())
        .args(["inspect", "diff", "--baseline"])
        .arg(&optimistic)
        .arg("--journal")
        .arg(&snapshotting)
        .output()
        .expect("spawn optirec inspect diff");
    let board = String::from_utf8_lossy(&inspect.stdout);
    assert!(board.contains("worker outages: 1 -> 1"), "{board}");
    assert!(board.contains("chaos injections: 1 -> 1"), "{board}");
    assert!(board.contains("snapshot epochs: 0 -> "), "{board}");
    assert!(board.contains("detection latency:"), "{board}");
    assert!(board.contains("re-shipped bytes:"), "{board}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_chaos_straggler_journals_the_injection_and_still_converges() {
    let dir = std::env::temp_dir().join(format!("optirec_cluster_chaos_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let journal = dir.join("straggler.jsonl");

    let output = cli_cluster_run(&journal, &["--chaos", "slow@1-2:1:25"]);
    assert!(output.status.success(), "stderr:\n{}", String::from_utf8_lossy(&output.stderr));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("components: 3"), "{stdout}");

    let text = std::fs::read_to_string(&journal).unwrap();
    assert!(
        text.contains(
            "\"event\":\"ChaosInjected\",\"superstep\":1,\"worker\":1,\
                       \"kind\":\"straggler\",\"param\":25"
        ),
        "{text}"
    );
    assert!(!text.contains("\"event\":\"WorkerLost\""), "a straggler is not a loss:\n{text}");

    // The loaded journal still has zero unknown lines, and the timeline
    // renders the injection.
    let loaded = flowscope::load_journal(&journal).expect("journal loads");
    assert_eq!(loaded.skipped, 0);
    let inspect = Command::new(optirec())
        .args(["inspect", "timeline", "--journal"])
        .arg(&journal)
        .output()
        .expect("spawn optirec inspect timeline");
    let timeline = String::from_utf8_lossy(&inspect.stdout);
    assert!(timeline.contains("chaos straggler w1 +25ms"), "{timeline}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_rejects_cluster_misuse_with_guidance() {
    // --kill without --cluster must fail fast, before any process spawns.
    let output = Command::new(optirec()).args(["cc", "--kill", "2:1"]).output().unwrap();
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("--cluster"), "{stderr}");

    // Algorithms not compiled into the worker binary are named in the error.
    let output = Command::new(optirec()).args(["kmeans", "--cluster", "2"]).output().unwrap();
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("cc and pagerank"), "{stderr}");
}
