//! Integration tests for the incremental serving engine.
//!
//! Covers the PR's acceptance criteria: a mutation batch re-converges in
//! strictly fewer supersteps than a cold run over the same mutated graph
//! (asserted via `ConvergenceSample` counts in the journal), random
//! insert/delete batches match a full recomputation (bitwise for CC, 1e-6
//! for PageRank), and a failure injected between two convergences recovers
//! to the failure-free fixpoint while queries keep seeing only pre- or
//! post-batch values — never intermediate state.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

use graphs::{Graph, GraphBuilder};
use proptest::prelude::*;
use serve::{
    spawn, EpochInjection, InjectionKind, LiveGraph, PointAnswer, ServeAlgorithm, ServeConfig,
    ServeEngine, Solution,
};
use telemetry::{JournalEvent, MemorySink, SinkHandle};

fn journalled_config() -> (ServeConfig, Arc<MemorySink>, SinkHandle) {
    let sink = Arc::new(MemorySink::new());
    let handle = SinkHandle::new(sink.clone());
    let config = ServeConfig { telemetry: handle.clone(), ..Default::default() };
    (config, sink, handle)
}

fn convergence_samples(events: &[JournalEvent]) -> usize {
    events.iter().filter(|e| matches!(e, JournalEvent::ConvergenceSample { .. })).count()
}

/// Two 32-vertex paths: deleting an edge splits one, an insert bridges them.
fn two_paths() -> Graph {
    let mut b = GraphBuilder::undirected(64);
    for v in 0..31u64 {
        b.add_edge(v, v + 1);
    }
    for v in 32..63u64 {
        b.add_edge(v, v + 1);
    }
    b.build()
}

#[test]
fn mutation_batch_reconverges_in_strictly_fewer_supersteps_than_a_cold_run() {
    let graph = two_paths();
    let (config, sink, handle) = journalled_config();
    let (mut engine, _) = ServeEngine::bootstrap(config, &graph).unwrap();
    // A local batch: split the first path and add a chord to one half. The
    // re-convergence only has to fix the 32 reset vertices; a cold run must
    // also re-propagate along the untouched 32-vertex path.
    engine.stage_delete(15, 16);
    engine.stage_insert(20, 24);
    let report = engine.commit().unwrap();
    assert!(report.converged);
    handle.flush();

    // Samples after the MutationBatch marker = the incremental run's
    // supersteps; they must agree with the epoch report.
    let events = sink.events();
    let batch_at = events
        .iter()
        .rposition(|e| matches!(e, JournalEvent::MutationBatch { .. }))
        .expect("commit journals a MutationBatch");
    let incremental = convergence_samples(&events[batch_at..]);
    assert_eq!(incremental as u32, report.supersteps);

    // Cold run over the same mutated graph, with its own journal.
    let mut mirror = LiveGraph::from_graph(&graph);
    assert!(mirror.remove(15, 16));
    assert!(mirror.insert(20, 24));
    let (cold_config, cold_sink, cold_handle) = journalled_config();
    let (cold_engine, cold_report) = ServeEngine::bootstrap(cold_config, &mirror.build()).unwrap();
    cold_handle.flush();
    let cold = convergence_samples(&cold_sink.events());
    assert_eq!(cold as u32, cold_report.supersteps);

    assert!(incremental < cold, "incremental run took {incremental} supersteps, cold run {cold}");
    assert_eq!(
        engine.snapshot().solution,
        cold_engine.snapshot().solution,
        "the shortcut must not change the fixpoint"
    );
}

#[test]
fn injected_failures_between_convergences_recover_the_failure_free_fixpoint() {
    let graph = two_paths();
    let (clean_engine, _) = ServeEngine::bootstrap(ServeConfig::default(), &graph).unwrap();
    let mut clean = clean_engine;
    clean.stage_delete(15, 16);
    clean.stage_insert(40, 0);
    clean.commit().unwrap();
    let expected = clean.snapshot().solution;

    let kinds = [
        InjectionKind::Panic { superstep: 2 },
        InjectionKind::Fail { superstep: 1, partitions: vec![0, 2] },
        InjectionKind::Mtbf { probability: 0.3, seed: 11 },
    ];
    for kind in kinds {
        let (config, sink, handle) = journalled_config();
        let config =
            ServeConfig { inject: Some(EpochInjection { epoch: 1, kind: kind.clone() }), ..config };
        let (mut engine, _) = ServeEngine::bootstrap(config, &graph).unwrap();
        engine.stage_delete(15, 16);
        engine.stage_insert(40, 0);
        let report = engine.commit().unwrap();
        assert!(report.converged, "{kind:?} must still converge");
        assert_eq!(
            engine.snapshot().solution,
            expected,
            "{kind:?} must recover the failure-free fixpoint"
        );
        handle.flush();
        let injected =
            sink.events().iter().any(|e| matches!(e, JournalEvent::FailureInjected { .. }));
        assert!(injected, "{kind:?} must actually fire inside the epoch");
    }
}

/// While a failure-hit commit re-converges, concurrent TCP queries must only
/// ever observe the pre-batch or post-batch label — never intermediate state
/// of the compensated re-run. Vertex 20 moves from component 0 (pre-split)
/// to component 16 (post-split), and intermediate supersteps of the reset
/// component hold other labels, so any leak would be visible.
#[test]
fn queries_concurrent_with_a_failing_commit_only_see_committed_solutions() {
    let graph = two_paths();
    let config = ServeConfig {
        inject: Some(EpochInjection {
            epoch: 1,
            kind: InjectionKind::Mtbf { probability: 0.3, seed: 11 },
        }),
        ..Default::default()
    };
    let (engine, _) = ServeEngine::bootstrap(config, &graph).unwrap();
    let pre = engine.point(20);
    assert_eq!(pre, Some(PointAnswer::Label(0)));

    let daemon = spawn(engine, "127.0.0.1:0").unwrap();
    let addr = daemon.addr();
    let connect = move || {
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut greeting = String::new();
        reader.read_line(&mut greeting).unwrap();
        (stream, reader)
    };

    // Reader thread: hammer `get 20` until the post-batch label appears.
    let reader_thread = std::thread::spawn(move || {
        let (mut stream, mut reader) = connect();
        let mut observed = Vec::new();
        for _ in 0..20_000 {
            writeln!(stream, "get 20").unwrap();
            let mut response = String::new();
            reader.read_line(&mut response).unwrap();
            let response = response.trim_end().to_string();
            let done = response == "ok label 16";
            observed.push(response);
            if done {
                break;
            }
        }
        observed
    });

    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut responses = BufReader::new(stream);
    let mut line = String::new();
    responses.read_line(&mut line).unwrap(); // greeting
    for command in ["- 15 16", "+ 40 0", "commit"] {
        writeln!(writer, "{command}").unwrap();
        line.clear();
        responses.read_line(&mut line).unwrap();
        assert!(line.starts_with("ok "), "{command}: {line}");
    }

    let observed = reader_thread.join().unwrap();
    assert!(!observed.is_empty());
    for response in &observed {
        assert!(
            response == "ok label 0" || response == "ok label 16",
            "query observed uncommitted state: {response}"
        );
    }
    assert_eq!(
        observed.last().map(String::as_str),
        Some("ok label 16"),
        "the post-batch solution must eventually be served"
    );
    daemon.stop();
}

/// Arbitrary base graph plus a few batches of random edge mutations.
fn arb_graph(max_vertices: u64, directed: bool) -> impl Strategy<Value = Graph> {
    (3..max_vertices).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n), 1..(3 * n as usize)).prop_map(move |edges| {
            let mut builder = if directed {
                GraphBuilder::directed(n as usize)
            } else {
                GraphBuilder::undirected(n as usize)
            };
            for (u, v) in edges {
                if u != v {
                    builder.add_edge(u, v);
                }
            }
            builder.build()
        })
    })
}

/// Batches of `(is_insert, u, v)` mutations over the same vertex range.
fn arb_batches(max_vertices: u64) -> impl Strategy<Value = Vec<Vec<(bool, u64, u64)>>> {
    proptest::collection::vec(
        proptest::collection::vec((any::<bool>(), 0..max_vertices, 0..max_vertices), 1..6),
        1..4,
    )
}

/// Run the batches through the engine while mirroring them on a plain
/// [`LiveGraph`], then bootstrap cold over the final graph for comparison.
fn run_batches(
    algorithm: ServeAlgorithm,
    graph: &Graph,
    batches: &[Vec<(bool, u64, u64)>],
) -> (Solution, Solution) {
    let config = ServeConfig { algorithm, ..Default::default() };
    let (mut engine, _) = ServeEngine::bootstrap(config.clone(), graph).unwrap();
    let mut mirror = LiveGraph::from_graph(graph);
    for batch in batches {
        for &(insert, u, v) in batch {
            if u == v {
                continue;
            }
            if insert {
                engine.stage_insert(u, v);
                mirror.insert(u, v);
            } else {
                engine.stage_delete(u, v);
                mirror.remove(u, v);
            }
        }
        let report = engine.commit().unwrap();
        assert!(report.converged);
    }
    let (cold, _) = ServeEngine::bootstrap(config, &mirror.build()).unwrap();
    (engine.snapshot().solution, cold.snapshot().solution)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    #[test]
    fn cc_incremental_batches_match_full_recomputation_bitwise(
        graph in arb_graph(24, false),
        batches in arb_batches(24),
    ) {
        let (incremental, cold) = run_batches(
            ServeAlgorithm::ConnectedComponents, &graph, &batches,
        );
        prop_assert_eq!(incremental, cold);
    }

    #[test]
    fn pagerank_incremental_batches_match_full_recomputation(
        graph in arb_graph(14, true),
        batches in arb_batches(14),
    ) {
        let (incremental, cold) =
            run_batches(ServeAlgorithm::PageRank, &graph, &batches);
        match (incremental, cold) {
            (Solution::Ranks(warm), Solution::Ranks(exact)) => {
                prop_assert_eq!(warm.len(), exact.len());
                for (&(v, w), &(u, e)) in warm.iter().zip(&exact) {
                    prop_assert_eq!(v, u);
                    prop_assert!((w - e).abs() < 1e-6, "vertex {}: {} vs {}", v, w, e);
                }
            }
            _ => prop_assert!(false, "both engines maintain rank solutions"),
        }
    }
}
