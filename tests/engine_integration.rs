//! Engine-level integration: compose operators, iterations, failure
//! injection and recovery handlers across crate boundaries without the
//! prebuilt algorithms.

use dataflow::partition::hash_partition;
use dataflow::prelude::*;
use recovery::checkpoint::{CheckpointBulkHandler, MemoryStore};
use recovery::optimistic::OptimisticBulkHandler;
use recovery::scenario::FailureScenario;

#[test]
fn batch_pipeline_across_operators() {
    let env = Environment::new(4);
    let orders = env.from_vec(vec![
        (1u64, "apples".to_string(), 3u64),
        (2, "pears".to_string(), 5),
        (1, "apples".to_string(), 2),
        (3, "plums".to_string(), 7),
    ]);
    let customers = env.from_vec(vec![
        (1u64, "ada".to_string()),
        (2, "grace".to_string()),
        (3, "edsger".to_string()),
    ]);
    let totals = orders
        .map("strip-product", |o: &(u64, String, u64)| (o.0, o.2))
        .reduce_by_key("sum-per-customer", |r: &(u64, u64)| r.0, |a, b| (a.0, a.1 + b.1))
        .join(
            "attach-name",
            &customers,
            |t: &(u64, u64)| t.0,
            |c: &(u64, String)| c.0,
            |t, c| (c.1.clone(), t.1),
        );
    let mut out = totals.collect().unwrap();
    out.sort();
    assert_eq!(
        out,
        vec![("ada".to_string(), 5), ("edsger".to_string(), 7), ("grace".to_string(), 5)]
    );
}

#[test]
fn iterative_job_with_custom_compensation_converges() {
    // Fixpoint: x <- max(x - 1, target), per key; compensation restores
    // lost entries to their start value, which only delays convergence.
    let parallelism = 4;
    let env = Environment::new(parallelism);
    let n: u64 = 64;
    let initial: Vec<(u64, u64)> = (0..n).map(|k| (k, 100 + k)).collect();
    let state0 = env.from_keyed_vec(initial.clone(), |r| r.0);

    let mut iteration = BulkIteration::new(&state0, 1000);
    let state = iteration.state();
    let next = state.map("decay", |&(k, x): &(u64, u64)| (k, x.saturating_sub(1).max(k)));
    let moving = next.filter("not-done", |&(k, x)| x > k);

    let start = initial.clone();
    iteration.set_fault_handler(OptimisticBulkHandler::new(
        move |state: &mut Partitions<(u64, u64)>, lost: &[usize], _i: u32| {
            for &(k, x0) in &start {
                let pid = hash_partition(&k, parallelism);
                if lost.contains(&pid) {
                    state.partition_mut(pid).push((k, x0));
                }
            }
        },
    ));
    iteration.set_failure_source(
        FailureScenario::none().fail_at(20, &[1]).fail_at(60, &[2]).to_source(),
    );
    let (result, stats) = iteration.close_with_termination(next, moving);
    let mut out = result.collect().unwrap();
    out.sort_unstable();
    assert_eq!(out, (0..n).map(|k| (k, k)).collect::<Vec<_>>());
    let stats = stats.take().unwrap();
    assert!(stats.converged);
    assert_eq!(stats.failures().count(), 2);
}

#[test]
fn checkpoint_handler_with_engine_iteration_rolls_back() {
    let parallelism = 2;
    let env = Environment::new(parallelism);
    let state0 = env.from_keyed_vec(vec![(0u64, 0u64), (1, 0)], |r| r.0);
    let mut iteration = BulkIteration::new(&state0, 10);
    let state = iteration.state();
    let next = state.map("inc", |&(k, x): &(u64, u64)| (k, x + 1));
    iteration.set_fault_handler(CheckpointBulkHandler::<(u64, u64), _>::new(MemoryStore::new(), 2));
    iteration.set_failure_source(FailureScenario::none().fail_at(5, &[0]).to_source());
    let (result, stats) = iteration.close(next);
    let mut out = result.collect().unwrap();
    out.sort_unstable();
    // All entries reach 10 despite the rollback (logical iterations 0..9).
    assert_eq!(out, vec![(0, 10), (1, 10)]);
    let stats = stats.take().unwrap();
    // Rolled back from superstep 5 to the checkpoint of iteration 4 →
    // exactly one redone superstep.
    assert_eq!(stats.supersteps(), 11);
    assert!(stats.total_checkpoint_bytes() > 0);
}

#[test]
fn nested_iterations_work() {
    // An outer bulk iteration whose body runs an inner bulk iteration.
    let env = Environment::new(2);
    let initial = env.from_vec(vec![1u64]);
    let outer = BulkIteration::new(&initial, 3);
    let outer_state = outer.state();

    // Inner loop: double the value 3 times (x * 8), inside each outer step.
    let inner = BulkIteration::new(&outer_state, 3);
    let inner_state = inner.state();
    let doubled = inner_state.map("double", |n: &u64| n * 2);
    let (inner_result, _) = inner.close(doubled);

    let (result, stats) = outer.close(inner_result);
    assert_eq!(result.collect().unwrap(), vec![8 * 8 * 8]);
    assert!(stats.take().unwrap().converged);
}

#[test]
fn explain_spans_nested_plans() {
    let env = Environment::new(2);
    let initial = env.from_vec(vec![1u64]);
    let iteration = BulkIteration::new(&initial, 2);
    let state = iteration.state();
    let next = state.map("body-map", |n: &u64| n + 1);
    let (result, _) = iteration.close(next);
    let text = result.explain();
    assert!(text.contains("bulk-iteration [BulkIteration]"), "{text}");
    assert!(text.contains("body-map [Map]"), "{text}");
    assert!(text.contains("iteration-head [IterationHead]"), "{text}");
}

#[test]
fn workloads_survive_single_partition_parallelism() {
    // Degenerate but legal: one partition means failures lose everything.
    let graph = graphs::generators::demo_components();
    let config = algos::connected_components::CcConfig {
        parallelism: 1,
        ft: algos::FtConfig::optimistic(FailureScenario::none().fail_at(1, &[0])),
        ..Default::default()
    };
    let result = algos::connected_components::run(&graph, &config).unwrap();
    assert_eq!(result.correct, Some(true));
}

#[test]
fn high_parallelism_exceeding_data_size_works() {
    let graph = graphs::generators::path(5);
    let config = algos::connected_components::CcConfig {
        parallelism: 16,
        ft: algos::FtConfig::optimistic(FailureScenario::none().fail_at(2, &[7, 11])),
        ..Default::default()
    };
    let result = algos::connected_components::run(&graph, &config).unwrap();
    assert_eq!(result.correct, Some(true));
}
