//! Panic-to-failure conversion, end to end: a partition task that panics
//! mid-superstep must not abort the process. The worker pool catches the
//! unwind, the executor surfaces a typed `PartitionPanic` error, and the
//! iteration drivers convert it into a regular partition failure handed to
//! the active recovery handler — after which the run completes normally.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use dataflow::config::{DispatchMode, EnvConfig};
use dataflow::partition::hash_partition;
use dataflow::prelude::*;
use recovery::optimistic::{OptimisticBulkHandler, OptimisticDeltaHandler};
use telemetry::{JournalEvent, MemorySink, SinkHandle};

type KV = (u64, u64);

/// Threaded environment (threshold 0 forces dispatch) with a capturing sink.
fn telemetry_env(parallelism: usize, dispatch: DispatchMode) -> (Environment, Arc<MemorySink>) {
    let sink = Arc::new(MemorySink::new());
    let config = EnvConfig::new(parallelism)
        .with_thread_threshold(0)
        .with_dispatch(dispatch)
        .with_telemetry(SinkHandle::new(sink.clone()));
    (Environment::with_config(config), sink)
}

/// A map UDF that panics exactly once, when it first sees `trigger`.
fn panic_once_on(trigger: u64) -> impl Fn(&KV) -> KV + Clone {
    let fired = Arc::new(AtomicBool::new(false));
    move |&(k, v): &KV| {
        if v == trigger && !fired.swap(true, Ordering::SeqCst) {
            panic!("injected UDF panic at value {trigger}");
        }
        (k, v.saturating_sub(1))
    }
}

fn bulk_countdown_survives_a_panic(dispatch: DispatchMode) {
    let parallelism = 4;
    let (env, sink) = telemetry_env(parallelism, dispatch);
    let n: u64 = 32;
    let initial: Vec<KV> = (0..n).map(|k| (k, 8 + k % 4)).collect();
    let state0 = env.from_keyed_vec(initial.clone(), |r| r.0);

    let mut iteration = BulkIteration::new(&state0, 100);
    // The record with value 5 first appears at superstep 3 (8 - 3); its key
    // determines the partition the panic is attributed to.
    let trigger = 5u64;
    let start = initial.clone();
    iteration.set_fault_handler(OptimisticBulkHandler::new(
        move |state: &mut Partitions<KV>, lost: &[usize], _i: u32| {
            for &(k, v) in &start {
                if lost.contains(&hash_partition(&k, parallelism)) {
                    state.partition_mut(hash_partition(&k, parallelism)).push((k, v));
                }
            }
        },
    ));
    let state = iteration.state();
    let next = state.map("decay", panic_once_on(trigger));
    let moving = next.filter("not-done", |&(_, v)| v > 0);
    let (result, stats) = iteration.close_with_termination(next, moving);

    let mut out = result.collect().expect("run survives the UDF panic");
    out.sort_unstable();
    assert_eq!(out, (0..n).map(|k| (k, 0)).collect::<Vec<_>>());

    let stats = stats.take().unwrap();
    assert!(stats.converged);
    let failures: Vec<_> = stats.failures().collect();
    assert_eq!(failures.len(), 1, "the panic must surface as exactly one failure");
    let record = failures[0].1;
    assert_eq!(record.recovery, dataflow::stats::RecoveryKind::Compensated);
    let panicked_step = stats.iterations.iter().find(|i| i.failure.is_some()).unwrap();
    assert_eq!(
        panicked_step.records_shuffled, 0,
        "the aborted superstep produced no completed shuffle"
    );
    // Compensation redoes the panicked logical iteration, so the run costs
    // exactly one extra superstep.
    assert_eq!(stats.supersteps(), stats.logical_iterations() + 1);

    let events = sink.events();
    let panicked: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            JournalEvent::PartitionPanicked { superstep, iteration, pid } => {
                Some((*superstep, *iteration, *pid))
            }
            _ => None,
        })
        .collect();
    assert_eq!(panicked.len(), 1);
    assert_eq!(record.lost_partitions, vec![panicked[0].2]);
    // No SuperstepCompleted entry exists for the aborted superstep.
    let completed: Vec<u32> = events
        .iter()
        .filter_map(|e| match e {
            JournalEvent::SuperstepCompleted { superstep, .. } => Some(*superstep),
            _ => None,
        })
        .collect();
    assert!(!completed.contains(&panicked[0].0));
}

#[test]
fn bulk_iteration_survives_a_udf_panic_on_the_pool() {
    bulk_countdown_survives_a_panic(DispatchMode::Pool);
}

#[test]
fn bulk_iteration_survives_a_udf_panic_on_scoped_threads() {
    bulk_countdown_survives_a_panic(DispatchMode::ScopedThreads);
}

#[test]
fn delta_iteration_survives_a_udf_panic() {
    // Min-label propagation over a path graph, with a workset-side UDF that
    // panics once mid-run. The compensation restores the lost solution
    // partition to initial labels and reseeds its workset records.
    let parallelism = 4;
    let n: u64 = 16;
    let (env, sink) = telemetry_env(parallelism, DispatchMode::Pool);
    let labels: Vec<KV> = (0..n).map(|v| (v, v)).collect();
    let solution = env.from_keyed_vec(labels.clone(), |r| r.0);
    let workset = env.from_keyed_vec(labels.clone(), |r| r.0);
    let mut edges: Vec<(u64, u64)> = Vec::new();
    for v in 0..n - 1 {
        edges.push((v, v + 1));
        edges.push((v + 1, v));
    }
    let edges_ds = env.from_keyed_vec(edges, |e| e.0);

    let mut it = DeltaIteration::new(&solution, &workset, 200);
    let start = labels.clone();
    it.set_fault_handler(OptimisticDeltaHandler::new(
        move |sets: &mut dataflow::ft::SolutionSets<u64, u64>,
              workset: &mut Partitions<KV>,
              lost: &[usize],
              _i: u32| {
            // Restore lost vertices to their initial labels and let them
            // propagate again; surviving path-neighbours must also re-send
            // their (correct) labels, exactly like the paper's
            // FixComponents compensation.
            for &(k, v) in &start {
                let pid = hash_partition(&k, parallelism);
                if lost.contains(&pid) {
                    sets[pid].insert(k, v);
                    workset.partition_mut(pid).push((k, v));
                    for u in [k.wrapping_sub(1), k + 1] {
                        let upid = hash_partition(&u, parallelism);
                        if u < n && !lost.contains(&upid) {
                            if let Some(&label) = sets[upid].get(&u) {
                                workset.partition_mut(upid).push((u, label));
                            }
                        }
                    }
                }
            }
        },
    ));
    let fired = Arc::new(AtomicBool::new(false));
    let edges_in = it.import(&edges_ds);
    let candidates = it
        .workset()
        .map("panic-once", move |&w: &KV| {
            // Label 0 reaches vertex 4 at iteration 4; panic the first time
            // that update flows through.
            if w == (4, 0) && !fired.swap(true, Ordering::SeqCst) {
                panic!("injected UDF panic in the delta body");
            }
            w
        })
        .join("to-neighbors", &edges_in, |w: &KV| w.0, |e| e.0, |w, e| (e.1, w.1))
        .reduce_by_key("min-candidate", |c| c.0, |a, b| if a.1 <= b.1 { a } else { b });
    let updates = candidates
        .join(
            "label-update",
            &it.solution(),
            |c| c.0,
            |s: &KV| s.0,
            |c, s| if c.1 < s.1 { Some((c.0, c.1)) } else { None },
        )
        .flat_map("updated-only", |u: &Option<KV>| u.iter().copied().collect());
    let (result, stats) = it.close(updates.clone(), updates);

    let mut out = result.collect().expect("run survives the UDF panic");
    out.sort_unstable();
    assert!(out.iter().all(|&(_, l)| l == 0), "all labels must reach 0: {out:?}");

    let stats = stats.take().unwrap();
    assert!(stats.converged);
    let failures: Vec<_> = stats.failures().collect();
    assert_eq!(failures.len(), 1);
    assert_eq!(failures[0].1.recovery, dataflow::stats::RecoveryKind::Compensated);
    let panicked_step = stats.iterations.iter().find(|i| i.failure.is_some()).unwrap();
    assert_eq!(panicked_step.records_shuffled, 0);

    let events = sink.events();
    assert_eq!(
        events.iter().filter(|e| e.kind() == "PartitionPanicked").count(),
        1,
        "the journal must record the panic"
    );
}

#[test]
fn inline_execution_survives_a_udf_panic_too() {
    // The inline (non-threaded) path catches unwinds per record batch as
    // well — a debugging configuration must not die where the threaded one
    // survives.
    let parallelism = 2;
    let config = EnvConfig::new(parallelism).with_threaded(false);
    let env = Environment::with_config(config);
    let initial: Vec<KV> = (0..8u64).map(|k| (k, 4)).collect();
    let state0 = env.from_keyed_vec(initial.clone(), |r| r.0);

    let mut iteration = BulkIteration::new(&state0, 50);
    let start = initial.clone();
    iteration.set_fault_handler(OptimisticBulkHandler::new(
        move |state: &mut Partitions<KV>, lost: &[usize], _i: u32| {
            for &(k, v) in &start {
                if lost.contains(&hash_partition(&k, parallelism)) {
                    state.partition_mut(hash_partition(&k, parallelism)).push((k, v));
                }
            }
        },
    ));
    let state = iteration.state();
    let next = state.map("decay", panic_once_on(2));
    let moving = next.filter("not-done", |&(_, v)| v > 0);
    let (result, stats) = iteration.close_with_termination(next, moving);
    let out = result.collect().expect("inline run survives the UDF panic");
    assert!(out.iter().all(|&(_, v)| v == 0));
    assert_eq!(stats.take().unwrap().failures().count(), 1);
}
