//! End-to-end reproduction of the paper's two demonstration scenarios
//! (§3.2 and §3.3), spanning all crates: graph generation → dataflow
//! execution → failure injection → compensation → statistics → rendering.

use algos::common::{CONVERGED, DISTINCT_LABELS, L1_DIFF, MESSAGES, RANK_SUM};
use algos::connected_components::{self, CcConfig};
use algos::pagerank::{self, PrConfig};
use algos::FtConfig;
use recovery::scenario::FailureScenario;

/// §3.2: failures in iterations 1 and 3 → plummet in the converged plot at
/// the failure, elevated messages in iterations 2 and 4, convergence to the
/// exact components regardless.
#[test]
fn cc_demo_scenario_reproduces_section_3_2() {
    let graph = graphs::generators::demo_components();
    let baseline = connected_components::run(&graph, &CcConfig::default()).unwrap();
    let config = CcConfig {
        capture_history: true,
        ft: FtConfig::optimistic(FailureScenario::none().fail_at(1, &[1]).fail_at(3, &[2])),
        ..Default::default()
    };
    let result = connected_components::run(&graph, &config).unwrap();

    // Convergence to the exact result "as if no failures had occurred".
    assert_eq!(result.correct, Some(true));
    assert_eq!(result.labels, baseline.labels);
    assert_eq!(result.num_components, 3);

    // Messages are elevated right after each failure relative to the
    // failure-free run at the same superstep.
    let messages = result.stats.counter_series(MESSAGES);
    let baseline_messages = baseline.stats.counter_series(MESSAGES);
    for after_failure in [2usize, 4] {
        let expected = baseline_messages.get(after_failure).copied().unwrap_or(0);
        assert!(
            messages[after_failure] > expected,
            "superstep {after_failure}: {} !> {expected} ({messages:?} vs {baseline_messages:?})",
            messages[after_failure]
        );
    }

    // The number of distinct labels ("colours") jumps back up at a failure.
    let colours = result.stats.gauge_series(DISTINCT_LABELS);
    assert!(colours[1] > colours[0].min(colours[2]) || colours[3] > colours[2]);

    // And the run needs more supersteps than the failure-free baseline.
    assert!(result.stats.supersteps() >= baseline.stats.supersteps());

    // The captured history matches the recorded statistics.
    let history = result.history.unwrap();
    assert_eq!(history.len(), result.stats.supersteps() as usize);
    assert_eq!(history.last().unwrap(), &result.labels);
}

/// §3.3: failure in iteration 5 → plummet of the converged-to-true-rank
/// count, spike in the L1 plot, ranks keep summing to one throughout, and
/// the final ranks match the exact reference.
#[test]
fn pagerank_demo_scenario_reproduces_section_3_3() {
    let graph = graphs::generators::demo_pagerank();
    let baseline = pagerank::run(&graph, &PrConfig::default()).unwrap();
    let config = PrConfig {
        capture_history: true,
        ft: FtConfig::optimistic(FailureScenario::none().fail_at(5, &[1])),
        ..Default::default()
    };
    let result = pagerank::run(&graph, &config).unwrap();

    assert!(result.stats.converged);
    assert!(result.l1_to_exact.unwrap() < 1e-3);
    assert!((result.rank_sum - 1.0).abs() < 1e-9);

    // L1 spike after the failure vs. the baseline's decaying curve.
    let l1 = result.stats.gauge_series(L1_DIFF);
    let baseline_l1 = baseline.stats.gauge_series(L1_DIFF);
    assert!(l1[6] > baseline_l1[6], "{l1:?} vs {baseline_l1:?}");

    // Converged-count plummet at the failure superstep vs. the baseline.
    let converged = result.stats.gauge_series(CONVERGED);
    let baseline_converged = baseline.stats.gauge_series(CONVERGED);
    assert!(converged[5] <= baseline_converged[5]);

    // FixRanks keeps the invariant at every superstep.
    for sum in result.stats.gauge_series(RANK_SUM) {
        assert!((sum - 1.0).abs() < 1e-9);
    }

    // Recovery costs extra supersteps.
    assert!(result.stats.supersteps() >= baseline.stats.supersteps());
}

/// The demo lets attendees choose *which* partitions fail and *when*; any
/// choice must converge to the same correct result.
#[test]
fn any_attendee_choice_converges() {
    let graph = graphs::generators::demo_components();
    for superstep in [0, 1, 2, 4] {
        for partitions in [vec![0], vec![3], vec![0, 1], vec![0, 1, 2]] {
            let config = CcConfig {
                ft: FtConfig::optimistic(FailureScenario::none().fail_at(superstep, &partitions)),
                ..Default::default()
            };
            let result = connected_components::run(&graph, &config).unwrap();
            assert_eq!(
                result.correct,
                Some(true),
                "failure of {partitions:?} at superstep {superstep}"
            );
        }
    }
}

/// Rendering the captured states produces the GUI's content (smoke test of
/// the flowviz pipeline over real run data).
#[test]
fn renderers_work_on_real_run_data() {
    let graph = graphs::generators::demo_components();
    let config = CcConfig {
        capture_history: true,
        ft: FtConfig::optimistic(FailureScenario::none().fail_at(2, &[1])),
        ..Default::default()
    };
    let result = connected_components::run(&graph, &config).unwrap();
    let history = result.history.unwrap();
    let rendered = flowviz::render::render_components(history.last().unwrap(), &[]);
    assert!(rendered.contains("3 component(s)"));

    let table = flowviz::table::run_stats_table(&result.stats);
    assert!(table.contains("compensated"));
    let csv = flowviz::csv::run_stats_csv(&result.stats);
    assert!(csv.contains("compensated"));
    let chart = flowviz::chart::ascii_chart(
        &result.stats.gauge_series(CONVERGED),
        &flowviz::chart::ChartOptions::titled("converged"),
    );
    assert!(chart.contains('*'));
}
