//! Cross-strategy equivalence: every *correct* recovery strategy
//! (optimistic, checkpoint — memory and disk backed — and restart) must
//! produce the same result as the failure-free run, on every algorithm.

use algos::connected_components::{self, CcConfig};
use algos::jacobi::{self, JacobiConfig};
use algos::pagerank::{self, PrConfig};
use algos::sssp::{self, SsspConfig};
use algos::FtConfig;
use recovery::checkpoint::CostModel;
use recovery::scenario::FailureScenario;
use recovery::strategy::Strategy;

fn fts(scenario: FailureScenario) -> Vec<FtConfig> {
    vec![
        FtConfig::optimistic(scenario.clone()),
        FtConfig::checkpoint(2, scenario.clone()),
        FtConfig::checkpoint(3, scenario.clone()).with_disk_checkpoints(true),
        FtConfig::restart(scenario),
    ]
}

/// Delta iterations additionally support incremental checkpointing.
fn delta_fts(scenario: FailureScenario) -> Vec<FtConfig> {
    let mut all = fts(scenario.clone());
    all.push(FtConfig {
        strategy: Strategy::IncrementalCheckpoint { full_interval: 4 },
        scenario,
        ..FtConfig::optimistic(FailureScenario::none())
    });
    all
}

#[test]
fn cc_labels_identical_across_strategies() {
    let graph = graphs::generators::random_components(4, 4..12, 0.25, 3);
    let baseline = connected_components::run(&graph, &CcConfig::default()).unwrap();
    for ft in delta_fts(FailureScenario::none().fail_at(2, &[0, 2])) {
        let label = ft.label();
        let config = CcConfig { ft, ..Default::default() };
        let result = connected_components::run(&graph, &config).unwrap();
        assert_eq!(result.labels, baseline.labels, "{label}");
        assert_eq!(result.stats.failures().count(), 1, "{label}");
    }
}

#[test]
fn sssp_distances_identical_across_strategies() {
    let graph = graphs::generators::grid(6, 6);
    let baseline = sssp::run(&graph, &SsspConfig::default()).unwrap();
    for ft in delta_fts(FailureScenario::none().fail_at(1, &[1])) {
        let label = ft.label();
        let config = SsspConfig { ft, ..Default::default() };
        let result = sssp::run(&graph, &config).unwrap();
        assert_eq!(result.distances, baseline.distances, "{label}");
    }
}

#[test]
fn pagerank_matches_exact_across_strategies() {
    let graph = graphs::generators::preferential_attachment(300, 2, 17);
    for ft in fts(FailureScenario::none().fail_at(4, &[1])) {
        let label = ft.label();
        let config = PrConfig { ft, ..Default::default() };
        let result = pagerank::run(&graph, &config).unwrap();
        assert!(result.stats.converged, "{label}");
        assert!(result.l1_to_exact.unwrap() < 1e-3, "{label}: {:?}", result.l1_to_exact);
        assert!((result.rank_sum - 1.0).abs() < 1e-9, "{label}");
    }
}

#[test]
fn jacobi_solution_unique_across_strategies() {
    let system = jacobi::random_diagonally_dominant(48, 4, 23);
    let reference = system.reference_solution();
    for ft in fts(FailureScenario::none().fail_at(3, &[0])) {
        let label = ft.label();
        let config = JacobiConfig { ft, ..Default::default() };
        let result = jacobi::run(&system, &config).unwrap();
        assert!(result.residual < 1e-8, "{label}: residual {}", result.residual);
        for &(i, v) in &result.solution {
            assert!((v - reference[i as usize]).abs() < 1e-7, "{label}: entry {i}");
        }
    }
}

#[test]
fn repeated_failures_across_strategies_still_converge() {
    let graph = graphs::generators::preferential_attachment(400, 2, 31);
    let scenario = FailureScenario::none().fail_at(1, &[0]).fail_at(4, &[1, 2]).fail_at(6, &[3]);
    let baseline = connected_components::run(&graph, &CcConfig::default()).unwrap();
    for ft in fts(scenario) {
        let label = ft.label();
        let config = CcConfig { ft, ..Default::default() };
        let result = connected_components::run(&graph, &config).unwrap();
        assert_eq!(result.labels, baseline.labels, "{label}");
    }
}

#[test]
fn random_failures_with_fixed_seed_converge() {
    let graph = graphs::generators::preferential_attachment(300, 2, 41);
    let scenario = FailureScenario::none().random(0.6, 2, 1, 99);
    let config =
        CcConfig { ft: FtConfig::optimistic(scenario), max_iterations: 400, ..Default::default() };
    let result = connected_components::run(&graph, &config).unwrap();
    assert_eq!(result.correct, Some(true));
    assert!(result.stats.failures().count() > 0, "p=0.6 must fire at least once");
}

#[test]
fn checkpoint_interval_bounds_redone_work() {
    // After a failure at superstep `f`, rollback recovery re-executes at
    // most `interval` supersteps.
    let graph = graphs::generators::path(40);
    for interval in [1u32, 2, 4] {
        let config = CcConfig {
            ft: FtConfig::checkpoint(interval, FailureScenario::none().fail_at(7, &[0])),
            ..Default::default()
        };
        let result = connected_components::run(&graph, &config).unwrap();
        assert_eq!(result.correct, Some(true));
        let redone = result.stats.supersteps() - result.stats.logical_iterations();
        assert!(redone < interval, "interval {interval}: redone {redone} supersteps");
    }
}

#[test]
fn strategy_descriptor_properties_match_behavior() {
    // The Strategy metadata used by reports agrees with what the handlers do.
    assert!(Strategy::Optimistic.is_correct());
    assert!(!Strategy::Optimistic.has_failure_free_overhead());
    assert!(Strategy::Checkpoint { interval: 1 }.has_failure_free_overhead());

    let graph = graphs::generators::demo_components();
    let config = CcConfig {
        ft: FtConfig::checkpoint(1, FailureScenario::none())
            .with_checkpoint_cost(CostModel::instant()),
        ..Default::default()
    };
    let result = connected_components::run(&graph, &config).unwrap();
    assert!(result.stats.total_checkpoint_bytes() > 0, "checkpointing must write bytes");

    let config =
        CcConfig { ft: FtConfig::optimistic(FailureScenario::none()), ..Default::default() };
    let result = connected_components::run(&graph, &config).unwrap();
    assert_eq!(result.stats.total_checkpoint_bytes(), 0, "optimistic writes nothing");
}
