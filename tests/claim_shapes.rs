//! Scaled-down versions of the paper's performance claims, asserted as
//! *shape* tests so regressions in the recovery machinery show up in CI:
//!
//! * C1 — checkpointing writes bytes and costs wall-clock on failure-free
//!   runs; optimistic/restart write nothing.
//! * C2 — redone work ordering: optimistic (0) < checkpoint (< interval)
//!   < restart (everything before the failure).
//! * A2 — incremental checkpointing writes fewer bytes than full
//!   per-superstep checkpointing and still recovers exactly.

use algos::connected_components::{self, CcConfig};
use algos::FtConfig;
use recovery::checkpoint::CostModel;
use recovery::scenario::FailureScenario;
use recovery::strategy::Strategy;
use std::time::Duration;

fn graph() -> graphs::Graph {
    graphs::generators::preferential_attachment(1_200, 3, 2015)
}

#[test]
fn c1_only_checkpoint_strategies_pay_failure_free_overhead() {
    let graph = graph();
    let run = |strategy: Strategy| {
        let config = CcConfig {
            ft: FtConfig {
                strategy,
                scenario: FailureScenario::none(),
                // A deliberately slow store makes the overhead visible in
                // wall-clock time even on a fast machine.
                checkpoint_cost: CostModel::throughput(Duration::from_millis(3), 50_000_000),
                checkpoint_on_disk: false,
                ..Default::default()
            },
            track_truth: false,
            ..Default::default()
        };
        connected_components::run(&graph, &config).unwrap().stats
    };

    let optimistic = run(Strategy::Optimistic);
    let restart = run(Strategy::Restart);
    let every_step = run(Strategy::Checkpoint { interval: 1 });
    let sparse = run(Strategy::Checkpoint { interval: 3 });

    assert_eq!(optimistic.total_checkpoint_bytes(), 0);
    assert_eq!(restart.total_checkpoint_bytes(), 0);
    assert!(every_step.total_checkpoint_bytes() > sparse.total_checkpoint_bytes());
    assert!(every_step.total_checkpoint_duration() > sparse.total_checkpoint_duration());
    assert!(sparse.total_checkpoint_duration() >= Duration::from_millis(3));
    // All converge to the same supersteps when nothing fails.
    assert_eq!(optimistic.supersteps(), every_step.supersteps());
}

#[test]
fn c2_redone_work_ordering_holds() {
    let graph = graph();
    let failure = FailureScenario::none().fail_at(3, &[0, 1]);
    let redone = |strategy: Strategy| {
        let config = CcConfig {
            ft: FtConfig { strategy, scenario: failure.clone(), ..Default::default() },
            ..Default::default()
        };
        let result = connected_components::run(&graph, &config).unwrap();
        assert_eq!(result.correct, Some(true), "{strategy:?}");
        result.stats.supersteps() - result.stats.logical_iterations()
    };

    let optimistic = redone(Strategy::Optimistic);
    let rollback = redone(Strategy::Checkpoint { interval: 2 });
    let restart = redone(Strategy::Restart);

    assert_eq!(optimistic, 0, "optimistic never re-executes supersteps");
    assert!(rollback < 2, "rollback redoes fewer supersteps than the interval");
    // The failure strikes at the END of superstep 3, so supersteps 0..=3
    // (four of them) are all recomputed from scratch.
    assert_eq!(restart, 4, "restart redoes everything up to and including the failed superstep");
}

#[test]
fn a2_incremental_checkpointing_writes_less_and_recovers_exactly() {
    let graph = graph();
    let failure = FailureScenario::none().fail_at(3, &[1]);
    let run = |strategy: Strategy| {
        let config = CcConfig {
            ft: FtConfig { strategy, scenario: failure.clone(), ..Default::default() },
            ..Default::default()
        };
        connected_components::run(&graph, &config).unwrap()
    };

    let baseline = connected_components::run(&graph, &CcConfig::default()).unwrap();
    let full = run(Strategy::Checkpoint { interval: 1 });
    let incremental = run(Strategy::IncrementalCheckpoint { full_interval: 100 });

    assert_eq!(full.labels, baseline.labels);
    assert_eq!(incremental.labels, baseline.labels);
    assert!(
        incremental.stats.total_checkpoint_bytes() < full.stats.total_checkpoint_bytes(),
        "incremental {} vs full {}",
        incremental.stats.total_checkpoint_bytes(),
        full.stats.total_checkpoint_bytes()
    );
    // The diff logs shrink as the working set drains.
    let diff_bytes: Vec<u64> =
        incremental.stats.iterations.iter().skip(1).filter_map(|i| i.checkpoint_bytes).collect();
    assert!(diff_bytes.last().unwrap() < &diff_bytes[0], "diff logs must shrink: {diff_bytes:?}");
}

#[test]
fn optimistic_recovery_costs_only_extra_convergence_iterations() {
    // The central quantitative statement of §2.2: after compensation, the
    // run needs more *logical* iterations (restored labels re-propagate),
    // but never repeats a superstep.
    let graph = graph();
    let baseline = connected_components::run(&graph, &CcConfig::default()).unwrap();
    let config = CcConfig {
        ft: FtConfig::optimistic(FailureScenario::none().fail_at(2, &[0, 1, 2])),
        ..Default::default()
    };
    let result = connected_components::run(&graph, &config).unwrap();
    assert_eq!(result.correct, Some(true));
    assert_eq!(result.stats.supersteps(), result.stats.logical_iterations());
    assert!(result.stats.logical_iterations() >= baseline.stats.logical_iterations());
}
