//! Chaos-class property tests: every chaos scenario class — kill storm,
//! lossy link, straggler — under each of the four recovery strategies
//! (optimistic, checkpoint, async-snapshot, restart) converges to the
//! failure-free fixpoint: bitwise for connected components, within 1e-6
//! for PageRank. Closes with snapshot-completeness units: recovery never
//! restores from a partial asynchronous snapshot.
//!
//! The classes map the cluster chaos plane onto the in-process failure
//! model: a *storm* loses several partitions in one superstep, a *lossy
//! link* loses single partitions at scattered supersteps, and a
//! *straggler* is a worker so slow it keeps getting declared dead — the
//! same partition lost at consecutive supersteps. Every schedule is
//! finite, so even restart recovery terminates.

use algos::connected_components::{self, CcConfig};
use algos::pagerank::{self, PrConfig};
use algos::FtConfig;
use dataflow::dataset::Partitions;
use dataflow::ft::{BulkFaultHandler, BulkRecoveryAction};
use graphs::{Graph, GraphBuilder};
use proptest::prelude::*;
use recovery::checkpoint::{MemoryStore, StableStore};
use recovery::scenario::FailureScenario;
use recovery::strategy::Strategy as RecoveryStrategy;
use recovery::AsyncSnapshotBulkHandler;

/// Arbitrary undirected graph: vertex count and edge list.
fn arb_graph(max_vertices: u64) -> impl Strategy<Value = Graph> {
    (2..max_vertices).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n), 0..(3 * n as usize)).prop_map(move |edges| {
            let mut builder = GraphBuilder::undirected(n as usize);
            for (u, v) in edges {
                builder.add_edge(u, v);
            }
            builder.build()
        })
    })
}

/// Kill storm: several of the four partitions lost in one superstep.
fn arb_storm() -> impl Strategy<Value = FailureScenario> {
    (0u32..6, proptest::collection::vec(0usize..4, 1..4))
        .prop_map(|(superstep, partitions)| FailureScenario::none().fail_at(superstep, &partitions))
}

/// Lossy link: independent single-partition losses at scattered supersteps.
fn arb_lossy_link() -> impl Strategy<Value = FailureScenario> {
    proptest::collection::vec((0u32..10, 0usize..4), 1..5).prop_map(|drops| {
        let mut scenario = FailureScenario::none();
        for (superstep, partition) in drops {
            scenario = scenario.fail_at(superstep, &[partition]);
        }
        scenario
    })
}

/// Straggler: one partition declared dead at consecutive supersteps.
fn arb_straggler() -> impl Strategy<Value = FailureScenario> {
    (0u32..5, 1u32..4, 0usize..4).prop_map(|(start, len, partition)| {
        let mut scenario = FailureScenario::none();
        for offset in 0..len {
            scenario = scenario.fail_at(start + offset, &[partition]);
        }
        scenario
    })
}

/// The four strategies under test, sharing one failure schedule.
fn four_strategies(scenario: FailureScenario, interval: u32) -> Vec<FtConfig> {
    vec![
        FtConfig::optimistic(scenario.clone()),
        FtConfig::checkpoint(interval, scenario.clone()),
        FtConfig {
            strategy: RecoveryStrategy::AsyncSnapshot { interval },
            scenario: scenario.clone(),
            ..FtConfig::optimistic(FailureScenario::none())
        },
        FtConfig::restart(scenario),
    ]
}

fn assert_cc_reaches_baseline(graph: &Graph, scenario: FailureScenario, interval: u32) {
    let baseline = connected_components::run(graph, &CcConfig::default()).unwrap();
    for ft in four_strategies(scenario, interval) {
        let label = ft.label();
        let config = CcConfig { ft, max_iterations: 400, ..Default::default() };
        let result = connected_components::run(graph, &config).unwrap();
        assert!(result.stats.converged, "{label}: did not converge");
        assert_eq!(result.labels, baseline.labels, "{label}: labels diverged from baseline");
    }
}

fn assert_pagerank_reaches_baseline(graph: &Graph, scenario: FailureScenario, interval: u32) {
    let failure_free = PrConfig { epsilon: 1e-9, max_iterations: 600, ..Default::default() };
    let baseline = pagerank::run(graph, &failure_free).unwrap();
    for ft in four_strategies(scenario, interval) {
        let label = ft.label();
        let config = PrConfig { ft, epsilon: 1e-9, max_iterations: 600, ..Default::default() };
        let result = pagerank::run(graph, &config).unwrap();
        assert!(result.stats.converged, "{label}: did not converge");
        assert!((result.rank_sum - 1.0).abs() < 1e-9, "{label}: rank mass {}", result.rank_sum);
        for (&(v, rank), &(_, reference)) in result.ranks.iter().zip(&baseline.ranks) {
            assert!(
                (rank - reference).abs() < 1e-6,
                "{label}: vertex {v}: {rank} vs baseline {reference}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    #[test]
    fn cc_survives_kill_storms_under_all_four_strategies(
        graph in arb_graph(28),
        scenario in arb_storm(),
        interval in 1u32..4,
    ) {
        assert_cc_reaches_baseline(&graph, scenario, interval);
    }

    #[test]
    fn cc_survives_lossy_links_under_all_four_strategies(
        graph in arb_graph(24),
        scenario in arb_lossy_link(),
        interval in 1u32..4,
    ) {
        assert_cc_reaches_baseline(&graph, scenario, interval);
    }

    #[test]
    fn cc_survives_stragglers_under_all_four_strategies(
        graph in arb_graph(24),
        scenario in arb_straggler(),
        interval in 1u32..4,
    ) {
        assert_cc_reaches_baseline(&graph, scenario, interval);
    }

    #[test]
    fn pagerank_survives_kill_storms_under_all_four_strategies(
        graph in arb_graph(16),
        scenario in arb_storm(),
        interval in 1u32..4,
    ) {
        assert_pagerank_reaches_baseline(&graph, scenario, interval);
    }

    #[test]
    fn pagerank_survives_stragglers_under_all_four_strategies(
        graph in arb_graph(14),
        scenario in arb_straggler(),
        interval in 1u32..4,
    ) {
        assert_pagerank_reaches_baseline(&graph, scenario, interval);
    }
}

// ---- direct vs coordinator-routed data plane, multi-process ------------
//
// The same seeded kill plan drives one run per data-plane mode per
// strategy, on real `optirec worker` processes. Whatever the chaos does,
// the two data planes must land on the same answer: bitwise for connected
// components, 1e-6 for PageRank (optimistic compensation legitimately
// takes a different trajectory per mode, but both terminate within the
// 1e-9 epsilon of the unique fixed point).

use cluster::{run_cluster, ClusterConfig, ClusterStrategy, DataPlaneMode, KillPlan};
use telemetry::SinkHandle;

fn cluster_strategies(interval: u32) -> Vec<ClusterStrategy> {
    vec![
        ClusterStrategy::Optimistic,
        ClusterStrategy::Checkpoint { interval },
        ClusterStrategy::AsyncSnapshot { interval },
        ClusterStrategy::Restart,
    ]
}

fn cluster_cfg(
    strategy: ClusterStrategy,
    mode: DataPlaneMode,
    kill: KillPlan,
    max_iterations: u32,
) -> ClusterConfig {
    let mut cfg = ClusterConfig::new(2, 4, max_iterations)
        .with_strategy(strategy)
        .with_data_plane(mode)
        .with_kill(kill);
    cfg.worker_cmd = vec![env!("CARGO_BIN_EXE_optirec").to_string(), "worker".to_string()];
    cfg.heartbeat_interval = std::time::Duration::from_millis(20);
    cfg.heartbeat_timeout = std::time::Duration::from_millis(500);
    cfg.step_timeout = std::time::Duration::from_secs(10);
    cfg
}

fn cluster_cc_graph() -> Graph {
    let mut b = GraphBuilder::undirected(24);
    for start in [0u64, 8, 16] {
        for v in start..start + 7 {
            b.add_edge(v, v + 1);
        }
    }
    b.build()
}

fn cluster_pagerank_graph() -> Graph {
    let mut b = GraphBuilder::directed(20);
    for v in 0..20u64 {
        b.add_edge(v, (v + 1) % 20);
    }
    for v in (0..20u64).step_by(3) {
        b.add_edge(v, (v + 7) % 20);
    }
    b.build()
}

proptest! {
    // Each case spawns 16 worker processes (4 strategies x 2 modes x 2
    // workers); keep the case count low.
    #![proptest_config(ProptestConfig { cases: 2, .. ProptestConfig::default() })]

    #[test]
    fn direct_and_funneled_cluster_cc_agree_bitwise_under_seeded_kills(
        superstep in 1u32..5,
        worker in 0usize..2,
        interval in 1u32..3,
    ) {
        let graph = cluster_cc_graph();
        let kill = KillPlan { superstep, worker };
        for strategy in cluster_strategies(interval) {
            let direct = run_cluster(
                "cc",
                &graph,
                cluster_cfg(strategy, DataPlaneMode::Direct, kill, 60),
                SinkHandle::disabled(),
            ).unwrap();
            let funnel = run_cluster(
                "cc",
                &graph,
                cluster_cfg(strategy, DataPlaneMode::Coordinator, kill, 60),
                SinkHandle::disabled(),
            ).unwrap();
            prop_assert!(direct.stats.converged, "{strategy:?}: direct did not converge");
            prop_assert!(funnel.stats.converged, "{strategy:?}: funnel did not converge");
            prop_assert_eq!(
                &direct.values,
                &funnel.values,
                "{:?}: data planes diverged under kill@{}:{}",
                strategy, superstep, worker
            );
        }
    }

    #[test]
    fn direct_and_funneled_cluster_pagerank_agree_under_seeded_kills(
        superstep in 1u32..5,
        worker in 0usize..2,
        interval in 1u32..3,
    ) {
        let graph = cluster_pagerank_graph();
        let kill = KillPlan { superstep, worker };
        for strategy in cluster_strategies(interval) {
            let direct = run_cluster(
                "pagerank",
                &graph,
                cluster_cfg(strategy, DataPlaneMode::Direct, kill, 300),
                SinkHandle::disabled(),
            ).unwrap();
            let funnel = run_cluster(
                "pagerank",
                &graph,
                cluster_cfg(strategy, DataPlaneMode::Coordinator, kill, 300),
                SinkHandle::disabled(),
            ).unwrap();
            prop_assert!(direct.stats.converged, "{strategy:?}: direct did not converge");
            prop_assert!(funnel.stats.converged, "{strategy:?}: funnel did not converge");
            for (&(v, a), &(_, b)) in direct.values.iter().zip(&funnel.values) {
                let (a, b) = (f64::from_bits(a), f64::from_bits(b));
                prop_assert!(
                    (a - b).abs() < 1e-6,
                    "{:?}: vertex {} rank {} (direct) vs {} (funnel)",
                    strategy, v, a, b
                );
            }
        }
    }
}

/// Two-partition state with distinguishable contents per epoch.
fn state_at(epoch: u64) -> Partitions<u64> {
    Partitions::from_parts(vec![vec![epoch, epoch + 1], vec![epoch + 2]])
}

#[test]
fn async_snapshot_never_restores_a_partial_epoch() {
    // Interval 2 over 2 partitions: the barrier at iteration 2 persists its
    // first chunk during iteration 2 and would complete at iteration 3. Fail
    // at iteration 3 — mid-flight — and recovery must fall back to epoch 0
    // (complete since iteration 1), never the half-persisted epoch 2.
    let mut handler = AsyncSnapshotBulkHandler::<u64, _>::new(MemoryStore::new(), 2);
    for iteration in 0..3u32 {
        handler.after_superstep(iteration, &state_at(u64::from(iteration))).unwrap();
    }
    assert_eq!(handler.latest_complete(), Some(0));
    assert_eq!(handler.in_flight_epoch(), Some(2), "epoch 2 must still be persisting");

    let mut state = state_at(99);
    let action = handler.on_failure(3, &[1], &mut state).unwrap();
    match action {
        BulkRecoveryAction::Restored { iteration, state } => {
            assert_eq!(iteration, 0, "must restore the last complete epoch");
            assert_eq!(state.into_parts(), state_at(0).into_parts());
        }
        _ => panic!("expected a restore from epoch 0"),
    }
    assert_eq!(handler.in_flight_epoch(), None, "the partial epoch is aborted");
    // The aborted epoch's persisted chunk is removed from stable storage,
    // so a later crash cannot mistake it for a restore point.
    assert_eq!(handler.store().get("async-bulk-2-p0").unwrap(), None);
    assert_eq!(handler.store().get("async-bulk-2-p1").unwrap(), None);
}

#[test]
fn async_snapshot_restarts_when_no_epoch_ever_completed() {
    // Fail before the very first epoch finishes persisting: with no
    // complete restore point the handler must order a restart, not hand
    // back half an epoch.
    let mut handler = AsyncSnapshotBulkHandler::<u64, _>::new(MemoryStore::new(), 4);
    handler.after_superstep(0, &state_at(0)).unwrap();
    assert_eq!(handler.latest_complete(), None);
    assert_eq!(handler.in_flight_epoch(), Some(0));

    let mut state = state_at(99);
    let action = handler.on_failure(0, &[0], &mut state).unwrap();
    assert!(matches!(action, BulkRecoveryAction::Restart), "no complete epoch: restart");
    assert_eq!(handler.store().get("async-bulk-0-p0").unwrap(), None, "partial chunk dropped");
}
