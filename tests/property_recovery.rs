//! Property-based tests of the paper's central claim: for the supported
//! fixpoint algorithms, optimistic recovery converges to the *same* result
//! as a failure-free run — for arbitrary graphs and arbitrary failure
//! schedules.

use algos::connected_components::{self, CcConfig};
use algos::pagerank::{self, PrConfig};
use algos::sssp::{self, SsspConfig};
use algos::FtConfig;
use graphs::{Graph, GraphBuilder};
use proptest::prelude::*;
use recovery::scenario::FailureScenario;
use recovery::strategy::Strategy as RecoveryStrategy;

/// Arbitrary undirected graph: vertex count and edge list.
fn arb_graph(max_vertices: u64) -> impl Strategy<Value = Graph> {
    (2..max_vertices).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n), 0..(3 * n as usize)).prop_map(move |edges| {
            let mut builder = GraphBuilder::undirected(n as usize);
            for (u, v) in edges {
                builder.add_edge(u, v);
            }
            builder.build()
        })
    })
}

/// Arbitrary failure schedule: up to three events in the first ten
/// supersteps, each killing up to three of four partitions.
fn arb_scenario() -> impl Strategy<Value = FailureScenario> {
    proptest::collection::vec((0u32..10, proptest::collection::vec(0usize..4, 1..3)), 0..3)
        .prop_map(|events| {
            let mut scenario = FailureScenario::none();
            for (superstep, partitions) in events {
                scenario = scenario.fail_at(superstep, &partitions);
            }
            scenario
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    #[test]
    fn cc_recovers_exactly_for_any_graph_and_schedule(
        graph in arb_graph(40),
        scenario in arb_scenario(),
    ) {
        let config = CcConfig {
            ft: FtConfig::optimistic(scenario),
            track_truth: true,
            ..Default::default()
        };
        let result = connected_components::run(&graph, &config).unwrap();
        prop_assert_eq!(result.correct, Some(true));
        prop_assert!(result.stats.converged);
    }

    #[test]
    fn sssp_recovers_exactly_for_any_graph_and_schedule(
        graph in arb_graph(30),
        scenario in arb_scenario(),
    ) {
        let config = SsspConfig {
            source: 0,
            ft: FtConfig::optimistic(scenario),
            ..Default::default()
        };
        let result = sssp::run(&graph, &config).unwrap();
        prop_assert_eq!(result.correct, Some(true));
    }

    #[test]
    fn pagerank_recovers_and_keeps_the_invariant(
        graph in arb_graph(25),
        scenario in arb_scenario(),
    ) {
        let config = PrConfig {
            ft: FtConfig::optimistic(scenario),
            epsilon: 1e-8,
            max_iterations: 300,
            ..Default::default()
        };
        let result = pagerank::run(&graph, &config).unwrap();
        prop_assert!(result.stats.converged);
        // Ranks sum to one at every superstep, failures or not.
        for sum in result.stats.gauge_series(algos::common::RANK_SUM) {
            prop_assert!((sum - 1.0).abs() < 1e-9, "sum {}", sum);
        }
        prop_assert!(
            result.l1_to_exact.unwrap() < 1e-4,
            "l1 {:?}", result.l1_to_exact
        );
    }

    #[test]
    fn incremental_checkpointing_is_equivalent_too(
        graph in arb_graph(30),
        scenario in arb_scenario(),
        full_interval in 1u32..6,
    ) {
        let baseline = connected_components::run(&graph, &CcConfig::default()).unwrap();
        let config = CcConfig {
            ft: FtConfig {
                strategy: RecoveryStrategy::IncrementalCheckpoint { full_interval },
                scenario,
                ..FtConfig::default()
            },
            ..Default::default()
        };
        let result = connected_components::run(&graph, &config).unwrap();
        prop_assert_eq!(result.labels, baseline.labels);
        // Every superstep checkpoints something (base or diff).
        prop_assert!(result.stats.iterations.iter().all(|i| i.checkpoint_bytes.is_some()));
    }

    #[test]
    fn rollback_recovery_is_equivalent_too(
        graph in arb_graph(30),
        scenario in arb_scenario(),
        interval in 1u32..5,
    ) {
        let baseline = connected_components::run(&graph, &CcConfig::default()).unwrap();
        let config = CcConfig {
            ft: FtConfig::checkpoint(interval, scenario),
            ..Default::default()
        };
        let result = connected_components::run(&graph, &config).unwrap();
        prop_assert_eq!(result.labels, baseline.labels);
    }
}
