//! End-to-end telemetry: run the prebuilt algorithms with failures under a
//! capturing sink and assert on the structured event journal — the ordered
//! recovery sequences, replay determinism, and reconciliation between the
//! journal-derived `RunReport` and the engine's legacy `RunStats`.

use std::sync::Arc;

use algos::connected_components::{self, CcConfig};
use algos::pagerank::{self, PrConfig};
use algos::FtConfig;
use recovery::scenario::FailureScenario;
use telemetry::{JournalEvent, MemorySink, RunReport, SinkHandle, SpanKind};

fn cc_run(ft: FtConfig) -> (Arc<MemorySink>, dataflow::stats::RunStats) {
    let sink = Arc::new(MemorySink::new());
    let config = CcConfig {
        parallelism: 4,
        ft: ft.with_telemetry(SinkHandle::new(sink.clone())),
        ..Default::default()
    };
    let graph = graphs::generators::demo_components();
    let result = connected_components::run(&graph, &config).expect("cc run");
    (sink, result.stats)
}

/// Positions of each event kind, in journal order.
fn kind_positions(events: &[JournalEvent], kind: &str) -> Vec<usize> {
    events.iter().enumerate().filter(|(_, e)| e.kind() == kind).map(|(i, _)| i).collect()
}

#[test]
fn optimistic_journal_records_compensation_sequence() {
    let scenario = FailureScenario::none().fail_at(1, &[1]);
    let (sink, stats) = cc_run(FtConfig::optimistic(scenario));
    let events = sink.events();

    let failures = kind_positions(&events, "FailureInjected");
    assert_eq!(failures.len(), 1, "exactly one injected failure");
    let fail_at = failures[0];

    // The handler's own account comes first, then the engine's verdict:
    // FailureInjected → CompensationInvoked → CompensationApplied.
    assert!(
        matches!(&events[fail_at + 1], JournalEvent::CompensationInvoked { name, .. }
            if name == "FixComponents"),
        "expected the named compensation right after the failure, got {:?}",
        events[fail_at + 1]
    );
    assert!(
        matches!(&events[fail_at + 2], JournalEvent::CompensationApplied { iteration: 1 }),
        "expected CompensationApplied at iteration 1, got {:?}",
        events[fail_at + 2]
    );

    // No rollback machinery fired, and the legacy stats agree.
    assert!(kind_positions(&events, "RolledBack").is_empty());
    assert!(kind_positions(&events, "CheckpointWritten").is_empty());
    assert_eq!(stats.failures().count(), 1);
}

#[test]
fn checkpoint_journal_records_rollback_sequence() {
    let scenario = FailureScenario::none().fail_at(3, &[1]);
    let (sink, stats) = cc_run(FtConfig::checkpoint(2, scenario));
    let events = sink.events();

    assert!(
        !kind_positions(&events, "CheckpointWritten").is_empty(),
        "interval-2 strategy must write checkpoints"
    );
    let failures = kind_positions(&events, "FailureInjected");
    assert_eq!(failures.len(), 1);
    let fail_at = failures[0];

    // FailureInjected → CheckpointRestored (handler) → RolledBack (engine),
    // rolling back to the latest checkpoint before the failure iteration.
    assert!(
        matches!(&events[fail_at + 1], JournalEvent::CheckpointRestored { iteration: 2 }),
        "expected restore from the iteration-2 checkpoint, got {:?}",
        events[fail_at + 1]
    );
    assert!(
        matches!(&events[fail_at + 2], JournalEvent::RolledBack { to_iteration: 2 }),
        "expected RolledBack to iteration 2, got {:?}",
        events[fail_at + 2]
    );

    // The rollback re-executes iterations: more supersteps than logical ones.
    assert!(stats.supersteps() > stats.logical_iterations());
    assert!(kind_positions(&events, "CompensationApplied").is_empty());
}

#[test]
fn deterministic_scenario_replays_to_byte_identical_journal() {
    let scenario = || FailureScenario::none().fail_at(1, &[1]).fail_at(3, &[0, 2]);
    let (first, _) = cc_run(FtConfig::optimistic(scenario()));
    let (second, _) = cc_run(FtConfig::optimistic(scenario()));
    let a = first.journal_lines();
    assert!(!a.is_empty() && a.ends_with('\n'));
    // Events carry no wall-clock data, so a deterministic schedule replays
    // to the byte. (Spans and metrics carry the timings instead.)
    assert_eq!(a, second.journal_lines());
}

#[test]
fn run_report_reconciles_with_legacy_stats() {
    for ft in [
        FtConfig::optimistic(FailureScenario::none().fail_at(1, &[1])),
        FtConfig::checkpoint(2, FailureScenario::none().fail_at(3, &[1])),
        FtConfig::restart(FailureScenario::none().fail_at(2, &[0])),
        FtConfig::ignore(FailureScenario::none().fail_at(1, &[3])),
    ] {
        let label = ft.label();
        let (sink, stats) = cc_run(ft);
        let report = RunReport::from_sink(&sink);
        let diffs = flowviz::reconcile(&report, &stats);
        assert!(diffs.is_empty(), "{label}: journal disagrees with RunStats: {diffs:#?}");
    }
}

#[test]
fn spans_cover_the_superstep_hierarchy() {
    let sink = Arc::new(MemorySink::new());
    let config = PrConfig {
        parallelism: 4,
        ft: FtConfig::optimistic(FailureScenario::none().fail_at(2, &[1]))
            .with_telemetry(SinkHandle::new(sink.clone())),
        ..Default::default()
    };
    let graph = graphs::generators::demo_pagerank();
    let result = pagerank::run(&graph, &config).expect("pagerank run");

    let spans = sink.spans();
    let count = |kind: SpanKind| spans.iter().filter(|s| s.kind == kind).count() as u32;
    assert_eq!(count(SpanKind::Run), 1);
    assert_eq!(count(SpanKind::Superstep), result.stats.supersteps());
    assert_eq!(count(SpanKind::Compute), result.stats.supersteps());
    assert_eq!(count(SpanKind::Recovery), 1);
    // The run span is the root: it must dominate every superstep span.
    let run_span = spans.iter().find(|s| s.kind == SpanKind::Run).unwrap();
    assert!(spans
        .iter()
        .filter(|s| s.kind == SpanKind::Superstep)
        .all(|s| s.duration <= run_span.duration));

    // Per-partition timing landed in the registry for all four partitions.
    let handle = config.ft.telemetry.clone();
    let snapshot = handle.metrics().snapshot();
    let hist =
        snapshot.histograms.get("partition_task_ns").expect("partition task histogram recorded");
    assert!(hist.count > 0);
}
