//! `--journal <path>` support shared by the example binaries: capture the
//! run's telemetry and write the journal plus spans/report sidecars, in the
//! layout `optirec inspect` expects.

use std::path::PathBuf;
use std::sync::Arc;

use flowscope::CapturePaths;
use telemetry::{MemorySink, SinkHandle};

/// A pending telemetry capture: a live sink plus the journal destination.
#[derive(Debug)]
pub struct JournalCapture {
    sink: Arc<MemorySink>,
    handle: SinkHandle,
    path: PathBuf,
}

impl JournalCapture {
    /// Scan `args` for `--journal <path>`, removing both tokens when found.
    /// Returns `Err` when the flag is present without a value.
    pub fn take_from(args: &mut Vec<String>) -> Result<Option<JournalCapture>, String> {
        let Some(i) = args.iter().position(|a| a == "--journal") else {
            return Ok(None);
        };
        if i + 1 >= args.len() {
            return Err("flag --journal needs a value".to_string());
        }
        let path = PathBuf::from(args.remove(i + 1));
        args.remove(i);
        let sink = Arc::new(MemorySink::new());
        let handle = SinkHandle::new(sink.clone());
        Ok(Some(JournalCapture { sink, handle, path }))
    }

    /// A fresh capture writing to `path`.
    pub fn to_path(path: PathBuf) -> JournalCapture {
        let sink = Arc::new(MemorySink::new());
        let handle = SinkHandle::new(sink.clone());
        JournalCapture { sink, handle, path }
    }

    /// A second capture for multi-run binaries: a fresh sink whose journal
    /// lands next to this one with `_<tag>` inserted before the suffix
    /// (`cc_journal.jsonl` + `pagerank` -> `cc_pagerank_journal.jsonl`).
    pub fn sibling(&self, tag: &str) -> JournalCapture {
        let name = self.path.file_name().and_then(|n| n.to_str()).unwrap_or("run.jsonl");
        let new_name = if let Some(stem) = name.strip_suffix("_journal.jsonl") {
            format!("{stem}_{tag}_journal.jsonl")
        } else if let Some(stem) = name.strip_suffix(".jsonl") {
            format!("{stem}_{tag}.jsonl")
        } else {
            format!("{name}_{tag}")
        };
        JournalCapture::to_path(self.path.with_file_name(new_name))
    }

    /// The journal destination.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }

    /// The telemetry handle to install into the run's `FtConfig`.
    pub fn handle(&self) -> SinkHandle {
        self.handle.clone()
    }

    /// Write the journal and its sidecars, printing where they went.
    pub fn finish(self) -> std::io::Result<CapturePaths> {
        self.handle.flush();
        let paths = flowscope::save_run(&self.sink, self.handle.metrics(), &self.path)?;
        println!(
            "\ntelemetry written: {} (spans: {}, report: {})",
            paths.journal.display(),
            paths.spans.display(),
            paths.report.display()
        );
        println!(
            "inspect it with: optirec inspect convergence --journal {}",
            paths.journal.display()
        );
        Ok(paths)
    }

    /// [`finish`](Self::finish) for example binaries: an unwritable journal
    /// destination becomes a clear CLI error naming the path, not a panic
    /// with a backtrace.
    pub fn finish_or_exit(self) {
        let path = self.path.clone();
        if let Err(e) = self.finish() {
            eprintln!("error: cannot write telemetry to {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_from_strips_the_flag_and_value() {
        let mut args = vec!["3".to_string(), "--journal".into(), "/tmp/x.jsonl".into(), "1".into()];
        let capture = JournalCapture::take_from(&mut args).unwrap().unwrap();
        assert_eq!(args, vec!["3".to_string(), "1".into()]);
        assert_eq!(capture.path, PathBuf::from("/tmp/x.jsonl"));
        assert!(capture.handle().enabled());
    }

    #[test]
    fn siblings_insert_the_tag_before_the_journal_suffix() {
        let capture = JournalCapture::to_path(PathBuf::from("out/cc_journal.jsonl"));
        assert_eq!(
            capture.sibling("pagerank").path,
            PathBuf::from("out/cc_pagerank_journal.jsonl")
        );
        let capture = JournalCapture::to_path(PathBuf::from("out/run.jsonl"));
        assert_eq!(capture.sibling("pr").path, PathBuf::from("out/run_pr.jsonl"));
    }

    #[test]
    fn absent_flag_returns_none_and_missing_value_errors() {
        let mut args = vec!["3".to_string()];
        assert!(JournalCapture::take_from(&mut args).unwrap().is_none());
        let mut args = vec!["--journal".to_string()];
        assert!(JournalCapture::take_from(&mut args).is_err());
    }
}
