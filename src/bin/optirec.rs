//! `optirec` — the demo launcher: pick an algorithm, an input graph, a
//! recovery strategy, and the partitions/iterations to fail, then watch the
//! run recover. Run `optirec --help` for usage.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use algos::common::{CONVERGED, L1_DIFF, MESSAGES, RANK_SUM};
use flowviz::chart::{ascii_chart, ChartOptions};
use flowviz::table::{run_stats_table, run_summary};
use optimistic_recovery::cli::{self, Algorithm, InspectCommand, Invocation};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || (args[0] != "serve" && args.iter().any(|a| a == "--help" || a == "-h")) {
        print!("{}", cli::usage());
        return;
    }
    if args[0] == "worker" {
        let listen = match cli::parse_worker(&args[1..]) {
            Ok(listen) => listen,
            Err(message) => {
                eprintln!("error: {message}");
                std::process::exit(2);
            }
        };
        if let Err(e) = cluster::worker::run(&listen) {
            eprintln!("error: worker: {e}");
            std::process::exit(1);
        }
        return;
    }
    if args[0] == "serve" {
        if args[1..].iter().any(|a| a == "--help" || a == "-h") {
            print!("{}", cli::serve_usage());
            return;
        }
        let invocation = match cli::parse_serve(&args[1..]) {
            Ok(invocation) => invocation,
            Err(message) => {
                eprintln!("error: {message}");
                std::process::exit(2);
            }
        };
        if let Err(message) = run_serve(&invocation) {
            eprintln!("error: {message}");
            std::process::exit(1);
        }
        return;
    }
    if args[0] == "top" {
        let invocation = match cli::parse_top(&args[1..]) {
            Ok(invocation) => invocation,
            Err(message) => {
                eprintln!("error: {message}");
                std::process::exit(2);
            }
        };
        if let Err(message) = run_top(&invocation) {
            eprintln!("error: {message}");
            std::process::exit(1);
        }
        return;
    }
    if args[0] == "inspect" {
        let command = match cli::parse_inspect(&args[1..]) {
            Ok(command) => command,
            Err(message) => {
                eprintln!("error: {message}");
                std::process::exit(2);
            }
        };
        match inspect(&command) {
            Ok(code) => std::process::exit(code),
            Err(message) => {
                eprintln!("error: {message}");
                std::process::exit(1);
            }
        }
    }
    let invocation = match cli::parse_args(&args) {
        Ok(invocation) => invocation,
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    };
    if let Err(message) = run(&invocation) {
        eprintln!("error: {message}");
        std::process::exit(1);
    }
}

/// Spans sidecar next to the journal, when the capture wrote one.
fn derived_spans(journal: &Path) -> Option<PathBuf> {
    let path = flowscope::capture_paths(journal).spans;
    path.exists().then_some(path)
}

/// Report sidecar next to the journal, when the capture wrote one.
fn derived_report(journal: &Path) -> Option<PathBuf> {
    let path = flowscope::capture_paths(journal).report;
    path.exists().then_some(path)
}

fn inspect(command: &InspectCommand) -> Result<i32, String> {
    let load_model = |journal: &Path| -> Result<flowscope::RunModel, String> {
        let loaded = flowscope::load_journal(journal).map_err(|e| e.to_string())?;
        if loaded.skipped > 0 {
            eprintln!("note: skipped {} unknown journal lines", loaded.skipped);
        }
        Ok(flowscope::RunModel::from_events(&loaded.events))
    };
    match command {
        InspectCommand::Timeline { journal, spans } => {
            let model = load_model(journal)?;
            let spans_path = spans.clone().or_else(|| derived_spans(journal));
            let spans = match &spans_path {
                Some(path) => Some(flowscope::load_spans(path).map_err(|e| e.to_string())?),
                None => None,
            };
            print!("{}", flowscope::render_timeline(&model, spans.as_deref()));
            Ok(0)
        }
        InspectCommand::Profile { report, straggler_factor } => {
            let summary = flowscope::load_report(report).map_err(|e| e.to_string())?;
            let profile = flowscope::build_profile(&summary, *straggler_factor);
            print!("{}", flowscope::render_profile(&profile));
            Ok(0)
        }
        InspectCommand::Convergence { journal, csv, html } => {
            let model = load_model(journal)?;
            print!("{}", flowscope::render_convergence(&model));
            if let Some(path) = csv {
                flowscope::write_convergence_csv(&model, path).map_err(|e| e.to_string())?;
                println!("csv written to {}", path.display());
            }
            if let Some(path) = html {
                flowscope::write_convergence_html(&model, path).map_err(|e| e.to_string())?;
                println!("html written to {}", path.display());
            }
            Ok(0)
        }
        InspectCommand::Recovery { journal, report } => {
            let model = load_model(journal)?;
            let summary = match report.clone().or_else(|| derived_report(journal)) {
                Some(path) => Some(flowscope::load_report(&path).map_err(|e| e.to_string())?),
                None => None,
            };
            let recovery = flowscope::build_recovery_report(&model, summary.as_ref());
            print!("{}", flowscope::render_recovery(&recovery));
            Ok(0)
        }
        InspectCommand::Diff { baseline, journal, baseline_report, report, options } => {
            let facts = |journal: &Path, report: &Option<PathBuf>| -> Result<_, String> {
                let loaded = flowscope::load_journal(journal).map_err(|e| e.to_string())?;
                let mut facts = flowscope::RunFacts::from_journal(&loaded);
                if let Some(path) = report.clone().or_else(|| derived_report(journal)) {
                    let summary = flowscope::load_report(&path).map_err(|e| e.to_string())?;
                    facts = facts.with_report(&summary);
                }
                Ok(facts)
            };
            let baseline = facts(baseline, baseline_report)?;
            let current = facts(journal, report)?;
            let diff = flowscope::diff_runs(&baseline, &current, options);
            print!("{}", flowscope::render_diff(&diff));
            Ok(if diff.has_regressions() { 1 } else { 0 })
        }
    }
}

/// One `stats` round-trip against a serve daemon: connect, skip the
/// greeting, ask, and hang up politely so the daemon logs a clean close.
fn stats_over_tcp(addr: &str) -> Result<String, String> {
    use std::io::{BufRead, BufReader, Write};
    let stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("connect to {addr} failed: {e}"))?;
    let mut reader = BufReader::new(
        stream.try_clone().map_err(|e| format!("clone stream for {addr} failed: {e}"))?,
    );
    let mut writer = stream;
    let mut greeting = String::new();
    reader.read_line(&mut greeting).map_err(|e| format!("read greeting from {addr}: {e}"))?;
    writer.write_all(b"stats\n").map_err(|e| format!("send stats to {addr}: {e}"))?;
    let mut response = String::new();
    reader.read_line(&mut response).map_err(|e| format!("read stats from {addr}: {e}"))?;
    let _ = writer.write_all(b"quit\n");
    if response.is_empty() {
        return Err(format!("{addr} closed the connection before answering stats"));
    }
    Ok(response.trim_end().to_string())
}

fn run_top(invocation: &cli::TopInvocation) -> Result<(), String> {
    if let Some(report) = &invocation.report {
        // Report snapshots are static; polling one would print the same
        // text forever, so --report always behaves like --once.
        let summary = flowscope::load_report(report).map_err(|e| e.to_string())?;
        print!("{}", flowscope::render_metrics_top(&summary));
        return Ok(());
    }
    let addr = invocation.connect.as_deref().expect("parse_top guarantees a source");
    loop {
        println!("{}", stats_over_tcp(addr)?);
        if invocation.once {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(invocation.interval_ms));
    }
}

fn run(invocation: &Invocation) -> Result<(), String> {
    if invocation.explain_only {
        let text = match invocation.algorithm {
            Algorithm::ConnectedComponents => {
                algos::connected_components::plan_text(invocation.parallelism)
            }
            Algorithm::PageRank => algos::pagerank::plan_text(invocation.parallelism),
            _ => return Err("--explain supports cc and pagerank".into()),
        };
        print!("{text}");
        return Ok(());
    }
    if let Some(workers) = invocation.cluster {
        return run_on_cluster(invocation, workers);
    }

    let mut ft = cli::ft_config(invocation);
    let capture = invocation.journal.as_ref().map(|path| {
        let sink = Arc::new(telemetry::MemorySink::new());
        let handle = telemetry::SinkHandle::new(sink.clone());
        (sink, handle, path.clone())
    });
    if let Some((_, handle, _)) = &capture {
        ft.telemetry = handle.clone();
    }
    println!(
        "running {:?} on {:?} with {} (parallelism {})",
        invocation.algorithm,
        invocation.graph,
        ft.label(),
        invocation.parallelism
    );

    let stats = match invocation.algorithm {
        Algorithm::ConnectedComponents => {
            let graph = invocation.graph.build(invocation.algorithm)?;
            let config = algos::connected_components::CcConfig {
                parallelism: invocation.parallelism,
                max_iterations: invocation.max_iterations,
                ft,
                ..Default::default()
            };
            let result =
                algos::connected_components::run(&graph, &config).map_err(|e| e.to_string())?;
            println!("components: {}  correct: {:?}", result.num_components, result.correct);
            plot(&result.stats, &[(CONVERGED, "vertices at final component")]);
            plot_counter(&result.stats, MESSAGES, "messages per iteration");
            result.stats
        }
        Algorithm::PageRank => {
            let graph = invocation.graph.build(invocation.algorithm)?;
            let config = algos::pagerank::PrConfig {
                parallelism: invocation.parallelism,
                max_iterations: invocation.max_iterations,
                epsilon: 1e-6,
                ft,
                ..Default::default()
            };
            let result = algos::pagerank::run(&graph, &config).map_err(|e| e.to_string())?;
            println!(
                "rank sum: {:.9}  L1 to exact: {:.2e}",
                result.rank_sum,
                result.l1_to_exact.unwrap_or(f64::NAN)
            );
            plot(&result.stats, &[(L1_DIFF, "L1 between estimates"), (RANK_SUM, "rank sum")]);
            result.stats
        }
        Algorithm::Sssp => {
            let graph = invocation.graph.build(invocation.algorithm)?;
            let config = algos::sssp::SsspConfig {
                parallelism: invocation.parallelism,
                max_iterations: invocation.max_iterations,
                ft,
                ..Default::default()
            };
            let result = algos::sssp::run(&graph, &config).map_err(|e| e.to_string())?;
            let reachable =
                result.distances.iter().filter(|&&(_, d)| d != algos::sssp::UNREACHABLE).count();
            println!("reachable from 0: {reachable}  correct: {:?}", result.correct);
            plot(&result.stats, &[(CONVERGED, "vertices at final distance")]);
            result.stats
        }
        Algorithm::Reachability => {
            let graph = invocation.graph.build(invocation.algorithm)?;
            let config = algos::reachability::ReachConfig {
                parallelism: invocation.parallelism,
                max_iterations: invocation.max_iterations,
                ft,
                ..Default::default()
            };
            let result = algos::reachability::run(&graph, &config).map_err(|e| e.to_string())?;
            println!("reached: {}  correct: {:?}", result.num_reached, result.correct);
            result.stats
        }
        Algorithm::KMeans => {
            let points = algos::kmeans::generate_blobs(4, 100, 0.6, 2015);
            let config = algos::kmeans::KmConfig {
                parallelism: invocation.parallelism,
                max_iterations: invocation.max_iterations,
                ft,
                ..Default::default()
            };
            let result = algos::kmeans::run(&points, &config).map_err(|e| e.to_string())?;
            println!("objective: {:.2}", result.objective);
            print!("{}", flowviz::render::render_centroids(&result.centroids));
            result.stats
        }
        Algorithm::Als => {
            let ratings = algos::als::generate_ratings(60, 40, 15, 5, 0.03, 2015);
            let config = algos::als::AlsConfig {
                parallelism: invocation.parallelism,
                sweeps: invocation.max_iterations.min(20),
                ft,
                ..Default::default()
            };
            let result = algos::als::run(&ratings, &config).map_err(|e| e.to_string())?;
            println!("training rmse: {:.4}", result.rmse);
            plot(
                &result.stats,
                &[("rmse", "training RMSE per sweep"), ("objective", "regularised objective")],
            );
            result.stats
        }
        Algorithm::Jacobi => {
            let system = algos::jacobi::random_diagonally_dominant(128, 5, 2015);
            let config = algos::jacobi::JacobiConfig {
                parallelism: invocation.parallelism,
                max_iterations: invocation.max_iterations.max(500),
                ft,
                ..Default::default()
            };
            let result = algos::jacobi::run(&system, &config).map_err(|e| e.to_string())?;
            println!("residual: {:.2e}", result.residual);
            result.stats
        }
    };

    println!("\nper-iteration statistics:");
    print!("{}", run_stats_table(&stats));
    println!("{}", run_summary(&stats));

    if let Some((sink, handle, path)) = &capture {
        let paths = flowscope::save_run(sink, handle.metrics(), path)
            .map_err(|e| format!("cannot write telemetry to {}: {e}", path.display()))?;
        println!(
            "telemetry written: {} (spans: {}, report: {})",
            paths.journal.display(),
            paths.spans.display(),
            paths.report.display()
        );
        println!(
            "inspect it with: optirec inspect convergence --journal {}",
            paths.journal.display()
        );
    }
    Ok(())
}

/// The `serve` subcommand: bootstrap the incremental serving engine, replay
/// a mutation file, and/or serve the line protocol over TCP. The journal
/// (when requested) spans the bootstrap convergence and every epoch.
fn run_serve(invocation: &cli::ServeInvocation) -> Result<(), String> {
    let algorithm = match invocation.algorithm {
        Algorithm::ConnectedComponents => serve::ServeAlgorithm::ConnectedComponents,
        Algorithm::PageRank => serve::ServeAlgorithm::PageRank,
        other => return Err(format!("serve supports cc and pagerank, not {other:?}")),
    };
    let graph = invocation.graph.build(invocation.algorithm)?;
    let capture = invocation.journal.as_ref().map(|path| {
        let sink = Arc::new(telemetry::MemorySink::new());
        let handle = telemetry::SinkHandle::new(sink.clone());
        (sink, handle, path.clone())
    });
    let telemetry = match &capture {
        Some((_, handle, _)) => handle.clone(),
        None => telemetry::SinkHandle::disabled(),
    };
    let config = serve::ServeConfig {
        algorithm,
        parallelism: invocation.parallelism,
        max_iterations: invocation.max_iterations,
        telemetry,
        inject: invocation.inject.clone(),
        elastic: invocation.elastic,
        ..Default::default()
    };
    println!(
        "serve {:?} on {:?} (parallelism {})",
        invocation.algorithm, invocation.graph, invocation.parallelism
    );
    if let Some(range) = invocation.elastic {
        println!(
            "elastic: epochs run on {}..={} worker processes (scale verb sets the target)",
            range.min_workers, range.max_workers
        );
    }
    if let Some(inject) = &invocation.inject {
        println!("will inject {:?} into epoch {}", inject.kind, inject.epoch);
    }
    let (mut engine, report) = serve::ServeEngine::bootstrap(config, &graph)?;
    println!(
        "bootstrap: converged over {} vertices in {} supersteps",
        graph.num_vertices(),
        report.supersteps
    );

    if let Some(path) = &invocation.replay {
        let commands = serve::load_replay(path)?;
        println!("replaying {} commands from {}", commands.len(), path.display());
        for command in &commands {
            let (response, quit) = serve::apply_command(&mut engine, command);
            println!("> {}", command.to_line());
            println!("{response}");
            if quit {
                break;
            }
        }
    }

    if let Some(listen) = &invocation.listen {
        let daemon = serve::spawn(engine, listen).map_err(|e| e.to_string())?;
        println!("serving on {} (line protocol; `quit` ends a session)", daemon.addr());
        match invocation.serve_seconds {
            Some(seconds) => {
                std::thread::sleep(std::time::Duration::from_secs(seconds));
                daemon.stop();
                println!("serve window of {seconds}s elapsed, shutting down");
            }
            None => loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            },
        }
    }

    if let Some((sink, handle, path)) = &capture {
        handle.flush();
        let paths = flowscope::save_run(sink, handle.metrics(), path)
            .map_err(|e| format!("cannot write telemetry to {}: {e}", path.display()))?;
        println!(
            "telemetry written: {} (spans: {}, report: {})",
            paths.journal.display(),
            paths.spans.display(),
            paths.report.display()
        );
        println!("inspect it with: optirec inspect timeline --journal {}", paths.journal.display());
    }
    Ok(())
}

/// The `--cluster` path: real worker processes over loopback TCP. Failure
/// injection here disturbs live processes and connections (`--kill` /
/// `--chaos`), and recovery is either optimistic compensation (default) or
/// asynchronous barrier snapshots (`--strategy async-snapshot`) — the
/// coordinator detects each loss at the network level and the re-spawned
/// worker rejoins mid-run.
fn run_on_cluster(invocation: &Invocation, workers: usize) -> Result<(), String> {
    let program = match invocation.algorithm {
        Algorithm::ConnectedComponents => "cc",
        Algorithm::PageRank => "pagerank",
        other => return Err(format!("--cluster supports cc and pagerank, not {other:?}")),
    };
    let graph = invocation.graph.build(invocation.algorithm)?;
    let cfg = cli::cluster_config(invocation, workers);

    let capture = invocation.journal.as_ref().map(|path| {
        let sink = Arc::new(telemetry::MemorySink::new());
        let handle = telemetry::SinkHandle::new(sink.clone());
        (sink, handle, path.clone())
    });
    let telemetry = match &capture {
        Some((_, handle, _)) => handle.clone(),
        None => telemetry::SinkHandle::disabled(),
    };
    println!(
        "running {:?} on {:?} with {workers} worker processes (parallelism {})",
        invocation.algorithm, invocation.graph, invocation.parallelism
    );
    if let recovery::Strategy::AsyncSnapshot { interval } = invocation.strategy {
        println!("recovery: asynchronous barrier snapshots every {interval} superstep(s)");
    }
    for event in &invocation.scale {
        println!("planned rescale: to {} workers at superstep {}", event.workers, event.superstep);
    }
    for kill in &invocation.chaos.kills {
        println!("will SIGKILL worker {} during superstep {}", kill.worker, kill.superstep);
    }
    for straggler in &invocation.chaos.stragglers {
        println!(
            "straggler: worker {} lags {}ms during supersteps {}..={}",
            straggler.worker,
            straggler.delay.as_millis(),
            straggler.from,
            straggler.to
        );
    }
    for link in &invocation.chaos.links {
        if !link.delay.is_zero() {
            println!(
                "link delay: worker {} frames +{}ms during supersteps {}..={}",
                link.worker,
                link.delay.as_millis(),
                link.from,
                link.to
            );
        }
        if link.drop_probability > 0.0 {
            println!(
                "lossy link: worker {} drops with p={} (seed {}) during supersteps {}..={}",
                link.worker, link.drop_probability, link.seed, link.from, link.to
            );
        }
    }

    let run = cluster::run_cluster(program, &graph, cfg, telemetry).map_err(|e| e.to_string())?;
    match invocation.algorithm {
        Algorithm::ConnectedComponents => {
            let mut labels: Vec<u64> = run.values.iter().map(|&(_, label)| label).collect();
            labels.sort_unstable();
            labels.dedup();
            println!("components: {}", labels.len());
        }
        Algorithm::PageRank => {
            let sum: f64 = run.values.iter().map(|&(_, bits)| f64::from_bits(bits)).sum();
            println!("rank sum: {sum:.9}");
        }
        _ => unreachable!("rejected above"),
    }

    println!("\nper-iteration statistics:");
    print!("{}", run_stats_table(&run.stats));
    println!("{}", run_summary(&run.stats));

    if let Some((sink, handle, path)) = &capture {
        let paths = flowscope::save_run(sink, handle.metrics(), path)
            .map_err(|e| format!("cannot write telemetry to {}: {e}", path.display()))?;
        println!(
            "telemetry written: {} (spans: {}, report: {})",
            paths.journal.display(),
            paths.spans.display(),
            paths.report.display()
        );
        println!("inspect it with: optirec inspect timeline --journal {}", paths.journal.display());
    }
    Ok(())
}

fn plot(stats: &dataflow::stats::RunStats, gauges: &[(&str, &str)]) {
    let markers: Vec<u32> = stats.failures().map(|(s, _)| s).collect();
    for (gauge, title) in gauges {
        let series = stats.gauge_series(gauge);
        if series.iter().any(|v| v.is_finite()) {
            println!(
                "{}",
                ascii_chart(&series, &ChartOptions::titled(*title).with_markers(markers.clone()))
            );
        }
    }
}

fn plot_counter(stats: &dataflow::stats::RunStats, counter: &str, title: &str) {
    let markers: Vec<u32> = stats.failures().map(|(s, _)| s).collect();
    let series: Vec<f64> = stats.counter_series(counter).iter().map(|&v| v as f64).collect();
    println!("{}", ascii_chart(&series, &ChartOptions::titled(title).with_markers(markers)));
}
