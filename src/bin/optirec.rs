//! `optirec` — the demo launcher: pick an algorithm, an input graph, a
//! recovery strategy, and the partitions/iterations to fail, then watch the
//! run recover. Run `optirec --help` for usage.

use algos::common::{CONVERGED, L1_DIFF, MESSAGES, RANK_SUM};
use flowviz::chart::{ascii_chart, ChartOptions};
use flowviz::table::{run_stats_table, run_summary};
use optimistic_recovery::cli::{self, Algorithm, Invocation};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") || args.is_empty() {
        print!("{}", cli::usage());
        return;
    }
    let invocation = match cli::parse_args(&args) {
        Ok(invocation) => invocation,
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    };
    if let Err(message) = run(&invocation) {
        eprintln!("error: {message}");
        std::process::exit(1);
    }
}

fn run(invocation: &Invocation) -> Result<(), String> {
    if invocation.explain_only {
        let text = match invocation.algorithm {
            Algorithm::ConnectedComponents => {
                algos::connected_components::plan_text(invocation.parallelism)
            }
            Algorithm::PageRank => algos::pagerank::plan_text(invocation.parallelism),
            _ => return Err("--explain supports cc and pagerank".into()),
        };
        print!("{text}");
        return Ok(());
    }

    let ft = cli::ft_config(invocation);
    println!(
        "running {:?} on {:?} with {} (parallelism {})",
        invocation.algorithm,
        invocation.graph,
        ft.label(),
        invocation.parallelism
    );

    let stats = match invocation.algorithm {
        Algorithm::ConnectedComponents => {
            let graph = invocation.graph.build(invocation.algorithm)?;
            let config = algos::connected_components::CcConfig {
                parallelism: invocation.parallelism,
                max_iterations: invocation.max_iterations,
                ft,
                ..Default::default()
            };
            let result =
                algos::connected_components::run(&graph, &config).map_err(|e| e.to_string())?;
            println!("components: {}  correct: {:?}", result.num_components, result.correct);
            plot(&result.stats, &[(CONVERGED, "vertices at final component")]);
            plot_counter(&result.stats, MESSAGES, "messages per iteration");
            result.stats
        }
        Algorithm::PageRank => {
            let graph = invocation.graph.build(invocation.algorithm)?;
            let config = algos::pagerank::PrConfig {
                parallelism: invocation.parallelism,
                max_iterations: invocation.max_iterations,
                epsilon: 1e-6,
                ft,
                ..Default::default()
            };
            let result = algos::pagerank::run(&graph, &config).map_err(|e| e.to_string())?;
            println!(
                "rank sum: {:.9}  L1 to exact: {:.2e}",
                result.rank_sum,
                result.l1_to_exact.unwrap_or(f64::NAN)
            );
            plot(&result.stats, &[(L1_DIFF, "L1 between estimates"), (RANK_SUM, "rank sum")]);
            result.stats
        }
        Algorithm::Sssp => {
            let graph = invocation.graph.build(invocation.algorithm)?;
            let config = algos::sssp::SsspConfig {
                parallelism: invocation.parallelism,
                max_iterations: invocation.max_iterations,
                ft,
                ..Default::default()
            };
            let result = algos::sssp::run(&graph, &config).map_err(|e| e.to_string())?;
            let reachable =
                result.distances.iter().filter(|&&(_, d)| d != algos::sssp::UNREACHABLE).count();
            println!("reachable from 0: {reachable}  correct: {:?}", result.correct);
            plot(&result.stats, &[(CONVERGED, "vertices at final distance")]);
            result.stats
        }
        Algorithm::Reachability => {
            let graph = invocation.graph.build(invocation.algorithm)?;
            let config = algos::reachability::ReachConfig {
                parallelism: invocation.parallelism,
                max_iterations: invocation.max_iterations,
                ft,
                ..Default::default()
            };
            let result = algos::reachability::run(&graph, &config).map_err(|e| e.to_string())?;
            println!("reached: {}  correct: {:?}", result.num_reached, result.correct);
            result.stats
        }
        Algorithm::KMeans => {
            let points = algos::kmeans::generate_blobs(4, 100, 0.6, 2015);
            let config = algos::kmeans::KmConfig {
                parallelism: invocation.parallelism,
                max_iterations: invocation.max_iterations,
                ft,
                ..Default::default()
            };
            let result = algos::kmeans::run(&points, &config).map_err(|e| e.to_string())?;
            println!("objective: {:.2}", result.objective);
            print!("{}", flowviz::render::render_centroids(&result.centroids));
            result.stats
        }
        Algorithm::Als => {
            let ratings = algos::als::generate_ratings(60, 40, 15, 5, 0.03, 2015);
            let config = algos::als::AlsConfig {
                parallelism: invocation.parallelism,
                sweeps: invocation.max_iterations.min(20),
                ft,
                ..Default::default()
            };
            let result = algos::als::run(&ratings, &config).map_err(|e| e.to_string())?;
            println!("training rmse: {:.4}", result.rmse);
            plot(
                &result.stats,
                &[("rmse", "training RMSE per sweep"), ("objective", "regularised objective")],
            );
            result.stats
        }
        Algorithm::Jacobi => {
            let system = algos::jacobi::random_diagonally_dominant(128, 5, 2015);
            let config = algos::jacobi::JacobiConfig {
                parallelism: invocation.parallelism,
                max_iterations: invocation.max_iterations.max(500),
                ft,
                ..Default::default()
            };
            let result = algos::jacobi::run(&system, &config).map_err(|e| e.to_string())?;
            println!("residual: {:.2e}", result.residual);
            result.stats
        }
    };

    println!("\nper-iteration statistics:");
    print!("{}", run_stats_table(&stats));
    println!("{}", run_summary(&stats));
    Ok(())
}

fn plot(stats: &dataflow::stats::RunStats, gauges: &[(&str, &str)]) {
    let markers: Vec<u32> = stats.failures().map(|(s, _)| s).collect();
    for (gauge, title) in gauges {
        let series = stats.gauge_series(gauge);
        if series.iter().any(|v| v.is_finite()) {
            println!(
                "{}",
                ascii_chart(&series, &ChartOptions::titled(*title).with_markers(markers.clone()))
            );
        }
    }
}

fn plot_counter(stats: &dataflow::stats::RunStats, counter: &str, title: &str) {
    let markers: Vec<u32> = stats.failures().map(|(s, _)| s).collect();
    let series: Vec<f64> = stats.counter_series(counter).iter().map(|&v| v as f64).collect();
    println!("{}", ascii_chart(&series, &ChartOptions::titled(title).with_markers(markers)));
}
