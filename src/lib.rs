//! Umbrella crate re-exporting the full reproduction of *"Optimistic
//! Recovery for Iterative Dataflows in Action"* (Dudoladov et al.,
//! SIGMOD 2015).
//!
//! * [`dataflow`] — the mini iterative dataflow engine (bulk & delta
//!   iterations, operators, failure injection).
//! * [`recovery`] — the paper's contribution: optimistic compensation-based
//!   recovery plus the checkpoint/restart baselines.
//! * [`graphs`] — graph structures, generators, and exact references.
//! * [`algos`] — Connected Components, PageRank, and extension fixpoint
//!   algorithms with their compensation functions.
//! * [`flowviz`] — terminal rendering of the demo's statistics and graphs.
//! * [`flowscope`] — post-hoc inspection of captured telemetry: timeline,
//!   profile, convergence, and regression diff views.
//!
//! See `examples/quickstart.rs` for a five-minute tour, and the `optirec`
//! binary ([`cli`]) for the interactive demo launcher.

#![warn(missing_docs)]

pub mod cli;
pub mod journal;

pub use algos;
pub use dataflow;
pub use flowscope;
pub use flowviz;
pub use graphs;
pub use recovery;
