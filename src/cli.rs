//! Command-line interface of the `optirec` demo launcher — the terminal
//! analog of the paper's demo application, where conference attendees pick
//! an algorithm, an input graph, the partitions to fail and the iterations
//! to fail them in.
//!
//! Hand-rolled argument parsing (no CLI dependency): subcommand + `--key
//! value` options.

use std::path::PathBuf;

use flowscope::DiffOptions;
use recovery::checkpoint::CostModel;
use recovery::scenario::FailureScenario;
use recovery::strategy::Strategy;

/// Which demo to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // variant names mirror the algorithm names
pub enum Algorithm {
    ConnectedComponents,
    PageRank,
    Sssp,
    Reachability,
    KMeans,
    Jacobi,
    Als,
}

impl Algorithm {
    fn parse(raw: &str) -> Result<Self, String> {
        match raw {
            "cc" | "connected-components" => Ok(Algorithm::ConnectedComponents),
            "pagerank" | "pr" => Ok(Algorithm::PageRank),
            "sssp" => Ok(Algorithm::Sssp),
            "reachability" | "reach" => Ok(Algorithm::Reachability),
            "kmeans" => Ok(Algorithm::KMeans),
            "jacobi" => Ok(Algorithm::Jacobi),
            "als" => Ok(Algorithm::Als),
            other => Err(format!("unknown algorithm {other:?}")),
        }
    }
}

/// Which input graph to run on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphSpec {
    /// The paper's small hand-crafted graph for the chosen algorithm.
    Demo,
    /// Twitter-like preferential-attachment graph with `n` vertices.
    Twitter(usize),
    /// `w x h` grid.
    Grid(usize, usize),
    /// Path with `n` vertices.
    Path(usize),
    /// Load an edge list from a file.
    File(String),
}

impl GraphSpec {
    fn parse(raw: &str) -> Result<Self, String> {
        if raw == "demo" {
            return Ok(GraphSpec::Demo);
        }
        if let Some(n) = raw.strip_prefix("twitter:") {
            return n
                .parse()
                .map(GraphSpec::Twitter)
                .map_err(|_| format!("invalid twitter size {n:?}"));
        }
        if let Some(dims) = raw.strip_prefix("grid:") {
            let (w, h) = dims
                .split_once('x')
                .ok_or_else(|| format!("grid spec must be grid:WxH, got {raw:?}"))?;
            let w = w.parse().map_err(|_| format!("invalid grid width {w:?}"))?;
            let h = h.parse().map_err(|_| format!("invalid grid height {h:?}"))?;
            return Ok(GraphSpec::Grid(w, h));
        }
        if let Some(n) = raw.strip_prefix("path:") {
            return n.parse().map(GraphSpec::Path).map_err(|_| format!("invalid path size {n:?}"));
        }
        if let Some(path) = raw.strip_prefix("file:") {
            return Ok(GraphSpec::File(path.to_string()));
        }
        Err(format!(
            "unknown graph {raw:?}; expected demo | twitter:N | grid:WxH | path:N | file:PATH"
        ))
    }

    /// Build/load the graph. `directed_default` picks edge direction for
    /// algorithms that care (PageRank uses directed demo input).
    pub fn build(&self, algorithm: Algorithm) -> Result<graphs::Graph, String> {
        Ok(match self {
            GraphSpec::Demo => match algorithm {
                Algorithm::PageRank => graphs::generators::demo_pagerank(),
                _ => graphs::generators::demo_components(),
            },
            GraphSpec::Twitter(n) => graphs::generators::preferential_attachment(*n, 3, 2015),
            GraphSpec::Grid(w, h) => graphs::generators::grid(*w, *h),
            GraphSpec::Path(n) => graphs::generators::path(*n),
            GraphSpec::File(path) => {
                let directed = algorithm == Algorithm::PageRank;
                graphs::io::load_edge_list(std::path::Path::new(path), directed)
                    .map_err(|e| format!("cannot load {path}: {e}"))?
                    .graph
            }
        })
    }
}

/// Parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Invocation {
    /// Which demo to run.
    pub algorithm: Algorithm,
    /// Which input graph to run it on.
    pub graph: GraphSpec,
    /// Recovery strategy.
    pub strategy: Strategy,
    /// Failure schedule.
    pub scenario: FailureScenario,
    /// Number of partitions / simulated workers.
    pub parallelism: usize,
    /// Iteration cap.
    pub max_iterations: u32,
    /// Print the dataflow plan instead of running.
    pub explain_only: bool,
    /// Capture telemetry and write the journal (plus spans and report
    /// sidecars) to this path.
    pub journal: Option<PathBuf>,
    /// Run on `N` real worker processes (`optirec worker`) instead of the
    /// in-process simulated cluster. Only cc and pagerank are compiled into
    /// the worker binary.
    pub cluster: Option<usize>,
    /// With `--cluster`: the chaos plan assembled from `--kill` flags
    /// (repeatable) and `--chaos` scenario specs.
    pub chaos: cluster::ChaosPlan,
    /// With `--cluster`: planned membership changes from `--scale` flags
    /// (repeatable) — the cluster rescales to N workers at superstep S.
    pub scale: Vec<cluster::ScaleEvent>,
    /// With `--cluster`: heartbeat probe interval in milliseconds.
    pub heartbeat_interval_ms: Option<u64>,
    /// With `--cluster`: heartbeat read timeout in milliseconds — how long a
    /// worker may stay silent before it is declared dead.
    pub heartbeat_timeout_ms: Option<u64>,
    /// With `--cluster`: per-superstep control read timeout in milliseconds.
    pub step_timeout_ms: Option<u64>,
    /// With `--cluster`: which data plane ships shuffle traffic. `None`
    /// keeps the cluster default (direct worker-to-worker exchange).
    pub data_plane: Option<cluster::DataPlaneMode>,
}

/// Default barrier interval of a bare `--strategy async-snapshot`.
pub const DEFAULT_SNAPSHOT_INTERVAL: u32 = 2;

/// Parse a strategy spec: `optimistic`, `restart`, `ignore`,
/// `checkpoint:K`, `incremental:K`, `async-snapshot[:K]`.
pub fn parse_strategy(raw: &str) -> Result<Strategy, String> {
    match raw {
        "optimistic" => Ok(Strategy::Optimistic),
        "restart" => Ok(Strategy::Restart),
        "ignore" => Ok(Strategy::Ignore),
        "async-snapshot" => Ok(Strategy::AsyncSnapshot { interval: DEFAULT_SNAPSHOT_INTERVAL }),
        other => {
            if let Some(k) = other.strip_prefix("checkpoint:") {
                return k
                    .parse()
                    .map(|interval| Strategy::Checkpoint { interval })
                    .map_err(|_| format!("invalid checkpoint interval {k:?}"));
            }
            if let Some(k) = other.strip_prefix("incremental:") {
                return k
                    .parse()
                    .map(|full_interval| Strategy::IncrementalCheckpoint { full_interval })
                    .map_err(|_| format!("invalid incremental interval {k:?}"));
            }
            if let Some(k) = other.strip_prefix("async-snapshot:") {
                return k
                    .parse()
                    .ok()
                    .filter(|&interval| interval > 0)
                    .map(|interval| Strategy::AsyncSnapshot { interval })
                    .ok_or_else(|| format!("invalid async-snapshot interval {k:?}"));
            }
            Err(format!(
                "unknown strategy {other:?}; expected optimistic | checkpoint:K | incremental:K | async-snapshot[:K] | restart | ignore"
            ))
        }
    }
}

/// Parse one failure event: `SUPERSTEP:P1,P2,...`.
pub fn parse_failure(raw: &str) -> Result<(u32, Vec<usize>), String> {
    let (superstep, partitions) = raw
        .split_once(':')
        .ok_or_else(|| format!("failure spec must be SUPERSTEP:P1,P2 — got {raw:?}"))?;
    let superstep =
        superstep.parse().map_err(|_| format!("invalid failure superstep {superstep:?}"))?;
    let partitions: Result<Vec<usize>, String> = partitions
        .split(',')
        .map(|p| p.parse().map_err(|_| format!("invalid partition id {p:?}")))
        .collect();
    let partitions = partitions?;
    if partitions.is_empty() {
        return Err("failure spec needs at least one partition".into());
    }
    Ok((superstep, partitions))
}

/// Parse a planned rescale for `--scale`: `SUPERSTEP:WORKERS`.
pub fn parse_scale(raw: &str) -> Result<cluster::ScaleEvent, String> {
    let (superstep, workers) = raw
        .split_once(':')
        .ok_or_else(|| format!("scale spec must be SUPERSTEP:WORKERS — got {raw:?}"))?;
    let superstep =
        superstep.parse().map_err(|_| format!("invalid scale superstep {superstep:?}"))?;
    let workers: usize =
        workers.parse().map_err(|_| format!("invalid scale worker count {workers:?}"))?;
    if workers == 0 {
        return Err("scale spec needs at least one worker".into());
    }
    Ok(cluster::ScaleEvent { superstep, workers })
}

/// Parse a SIGKILL plan for `--kill`: `SUPERSTEP:WORKER`.
pub fn parse_kill(raw: &str) -> Result<(u32, usize), String> {
    let (superstep, worker) = raw
        .split_once(':')
        .ok_or_else(|| format!("kill spec must be SUPERSTEP:WORKER — got {raw:?}"))?;
    let superstep =
        superstep.parse().map_err(|_| format!("invalid kill superstep {superstep:?}"))?;
    let worker = worker.parse().map_err(|_| format!("invalid kill worker {worker:?}"))?;
    Ok((superstep, worker))
}

/// Parse a chaos scenario spec into `plan`. The spec is either `@PATH`
/// (read scenarios from a file: one per line, `#` comments) or
/// `;`-separated scenarios:
///
/// * `kill@S:W1,W2,…` — SIGKILL workers `W…` during superstep `S` (several
///   workers form a kill storm)
/// * `slow@S-T:W:MS` — straggler: worker `W` runs `MS` ms late during
///   supersteps `S..=T`
/// * `delay@S-T:W:MS` — link delay: frames to worker `W` are delayed `MS`
///   ms during supersteps `S..=T`
/// * `drop@S-T:W:P:SEED` — lossy link: each superstep in `S..=T` the
///   connection to worker `W` drops with probability `P`, decided
///   deterministically from `SEED`
pub fn parse_chaos(raw: &str, plan: &mut cluster::ChaosPlan) -> Result<(), String> {
    if let Some(path) = raw.strip_prefix('@') {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read chaos scenario file {path}: {e}"))?;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            parse_chaos_scenario(line, plan)?;
        }
        return Ok(());
    }
    for scenario in raw.split(';').map(str::trim).filter(|s| !s.is_empty()) {
        parse_chaos_scenario(scenario, plan)?;
    }
    Ok(())
}

fn parse_chaos_scenario(raw: &str, plan: &mut cluster::ChaosPlan) -> Result<(), String> {
    let bad = |why: &str| format!("invalid chaos scenario {raw:?}: {why}");
    let (kind, rest) =
        raw.split_once('@').ok_or_else(|| bad("expected KIND@ARGS (kill/slow/delay/drop)"))?;
    let parse_span = |s: &str| -> Result<(u32, u32), String> {
        let (from, to) = match s.split_once('-') {
            Some((from, to)) => (
                from.parse().map_err(|_| bad("bad superstep range start"))?,
                to.parse().map_err(|_| bad("bad superstep range end"))?,
            ),
            None => {
                let at = s.parse().map_err(|_| bad("bad superstep"))?;
                (at, at)
            }
        };
        if from > to {
            return Err(bad("superstep range runs backwards"));
        }
        Ok((from, to))
    };
    match kind {
        "kill" => {
            let (superstep, workers) =
                rest.split_once(':').ok_or_else(|| bad("expected kill@S:W1,W2,…"))?;
            let superstep = superstep.parse().map_err(|_| bad("bad superstep"))?;
            for worker in workers.split(',') {
                let worker = worker.parse().map_err(|_| bad("bad worker index"))?;
                plan.kills.push(cluster::KillPlan { superstep, worker });
            }
        }
        "slow" => {
            let [span, worker, ms] =
                split_fields(rest).ok_or_else(|| bad("expected slow@S-T:W:MS"))?;
            let (from, to) = parse_span(span)?;
            plan.stragglers.push(cluster::StragglerPlan {
                from,
                to,
                worker: worker.parse().map_err(|_| bad("bad worker index"))?,
                delay: std::time::Duration::from_millis(
                    ms.parse().map_err(|_| bad("bad delay (ms)"))?,
                ),
            });
        }
        "delay" => {
            let [span, worker, ms] =
                split_fields(rest).ok_or_else(|| bad("expected delay@S-T:W:MS"))?;
            let (from, to) = parse_span(span)?;
            plan.links.push(cluster::LinkPlan {
                from,
                to,
                worker: worker.parse().map_err(|_| bad("bad worker index"))?,
                delay: std::time::Duration::from_millis(
                    ms.parse().map_err(|_| bad("bad delay (ms)"))?,
                ),
                drop_probability: 0.0,
                seed: 0,
            });
        }
        "drop" => {
            let fields: Vec<&str> = rest.split(':').collect();
            let [span, worker, prob, seed] = fields.as_slice() else {
                return Err(bad("expected drop@S-T:W:P:SEED"));
            };
            let (from, to) = parse_span(span)?;
            let prob: f64 = prob.parse().map_err(|_| bad("bad drop probability"))?;
            if !(0.0..=1.0).contains(&prob) {
                return Err(bad("drop probability must be in 0.0..=1.0"));
            }
            plan.links.push(cluster::LinkPlan {
                from,
                to,
                worker: worker.parse().map_err(|_| bad("bad worker index"))?,
                delay: std::time::Duration::ZERO,
                drop_probability: prob,
                seed: seed.parse().map_err(|_| bad("bad seed"))?,
            });
        }
        other => return Err(bad(&format!("unknown scenario kind {other:?}"))),
    }
    Ok(())
}

fn split_fields(rest: &str) -> Option<[&str; 3]> {
    let fields: Vec<&str> = rest.split(':').collect();
    match fields.as_slice() {
        [a, b, c] => Some([a, b, c]),
        _ => None,
    }
}

/// Valid flags of the run subcommand, listed in unknown-flag errors.
pub const RUN_FLAGS: &[&str] = &[
    "--graph",
    "--strategy",
    "--fail",
    "--parallelism",
    "--max-iterations",
    "--explain",
    "--journal",
    "--cluster",
    "--kill",
    "--chaos",
    "--scale",
    "--heartbeat-interval-ms",
    "--heartbeat-timeout-ms",
    "--step-timeout-ms",
    "--data-plane",
];

/// Usage text.
pub fn usage() -> &'static str {
    "optirec — optimistic recovery for iterative dataflows, demo launcher

USAGE:
    optirec <ALGORITHM> [OPTIONS]
    optirec serve <cc|pagerank> [OPTIONS]      (see `optirec serve --help`)
    optirec inspect <timeline|profile|convergence|recovery|diff> [OPTIONS]
    optirec top (--report <PATH> | --connect <ADDR>) [--once] [--interval-ms <MS>]
    optirec worker [--listen ADDR]

ALGORITHMS:
    cc | pagerank | sssp | reachability | kmeans | jacobi | als

OPTIONS:
    --graph <SPEC>        demo | twitter:N | grid:WxH | path:N | file:PATH   [demo]
    --strategy <SPEC>     optimistic | checkpoint:K | incremental:K |
                          async-snapshot[:K] | restart | ignore   [optimistic]
    --fail <S:P1,P2>      fail partitions P1,P2 at superstep S (repeatable)
    --parallelism <N>     number of partitions / simulated workers   [4]
    --max-iterations <N>  iteration cap   [200]
    --explain             print the dataflow plan instead of running
    --journal <PATH>      capture telemetry: write the event journal there,
                          plus spans and report sidecars (inspect reads them)
    --cluster <N>         run on N real worker processes over loopback TCP
                          (cc and pagerank only; spawns `optirec worker`)
    --data-plane <MODE>   with --cluster: direct (workers shuffle peer to
                          peer over their own connections) or coordinator
                          (all traffic funnels through the coordinator, the
                          pre-direct baseline)   [direct]
    --kill <S:W>          with --cluster: SIGKILL worker W while superstep S
                          is in flight (repeatable; composes with --chaos)
    --scale <S:N>         with --cluster: planned rescale to N workers at
                          superstep S (repeatable) — joiners are spawned and
                          loaded live, leavers drain gracefully, and moved
                          partitions re-ship over the recovery path
    --chaos <SPEC>        with --cluster: schedule failure injections.
                          SPEC is `;`-separated scenarios, or @PATH to read
                          them from a file (one per line, # comments):
                            kill@S:W1,W2     SIGKILL workers at superstep S
                            slow@S-T:W:MS    straggler: worker W lags MS ms
                            delay@S-T:W:MS   link delay on frames to W
                            drop@S-T:W:P:SEED  lossy link: sever W's
                                             connection with probability P,
                                             deterministic from SEED
    --heartbeat-interval-ms <MS>  with --cluster: delay between heartbeat
                          probes   [100; env OPTIREC_HEARTBEAT_INTERVAL_MS]
    --heartbeat-timeout-ms <MS>   with --cluster: silence before a worker is
                          declared dead   [3000; env OPTIREC_HEARTBEAT_TIMEOUT_MS]
    --step-timeout-ms <MS>        with --cluster: per-superstep control read
                          timeout   [30000; env OPTIREC_STEP_TIMEOUT_MS]

EXAMPLES:
    optirec cc --fail 3:1 --fail 5:0,2
    optirec pagerank --graph twitter:50000 --strategy checkpoint:2 --parallelism 8
    optirec cc --journal results/cc_journal.jsonl
    optirec cc --cluster 2 --kill 2:1 --journal results/cluster_journal.jsonl
    optirec cc --cluster 2 --scale 2:4 --scale 5:2 --journal results/elastic_journal.jsonl
    optirec cc --cluster 3 --strategy async-snapshot:2 --chaos 'kill@2:0,1;slow@3-5:2:50'
    optirec inspect convergence --journal results/cc_journal.jsonl
    optirec inspect recovery --journal results/cluster_journal.jsonl
    optirec inspect diff --baseline results/base_journal.jsonl --journal results/cc_journal.jsonl
    optirec top --once --report results/cluster_report.json

`optirec top` renders a plain-text metrics snapshot: from a saved report
sidecar (--report), or live from a serve daemon's `stats` command
(--connect; repeats every --interval-ms [2000] unless --once).

The `worker` subcommand starts a cluster worker process: it binds ADDR
(default 127.0.0.1:0), prints `OPTIREC_WORKER_LISTENING <port>`, and serves
coordinator connections until killed. `--cluster` spawns its own workers;
start workers manually only to watch the two-terminal demo from README.md.
"
}

/// Usage text of the `inspect` subcommands.
pub fn inspect_usage() -> &'static str {
    "optirec inspect — analyse a captured run

USAGE:
    optirec inspect timeline    --journal <PATH> [--spans <PATH>]
    optirec inspect profile     --report <PATH> [--straggler-factor <F>]
    optirec inspect convergence --journal <PATH> [--csv <PATH>] [--html <PATH>]
    optirec inspect recovery    --journal <PATH> [--report <PATH>]
    optirec inspect diff        --baseline <PATH> --journal <PATH>
                                [--baseline-report <PATH>] [--report <PATH>]
                                [--superstep-pct <P>] [--wall-pct <P>]
                                [--redundant-steps <N>] [--recovery-pct <P>]

Paths point at JSONL journals written with --journal (or by the figure
binaries); spans and report sidecars are found automatically next to the
journal when present. `recovery` attributes, per worker outage, the
detection latency, respawn cost, re-shipped bytes, and recomputed
supersteps. `diff` exits nonzero when the current run regresses beyond the
thresholds (defaults: supersteps +0%, wall +20%, redundant supersteps +0,
recovery wall +25%).
"
}

/// One `optirec inspect` invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum InspectCommand {
    /// ASCII Gantt of supersteps with failure/recovery markers.
    Timeline {
        /// Event journal to fold.
        journal: PathBuf,
        /// Explicit spans sidecar (auto-derived from the journal otherwise).
        spans: Option<PathBuf>,
    },
    /// Per-partition / per-operator time breakdown.
    Profile {
        /// Metrics-wrapped (or bare) run report.
        report: PathBuf,
        /// Straggler threshold as a multiple of the median partition.
        straggler_factor: f64,
    },
    /// Convergence curves with recovery overlays.
    Convergence {
        /// Event journal to fold.
        journal: PathBuf,
        /// Also export the per-superstep table as CSV.
        csv: Option<PathBuf>,
        /// Also export an HTML page with SVG charts.
        html: Option<PathBuf>,
    },
    /// Per-failure recovery-cost accounting (detection latency, respawn
    /// time, re-shipped bytes, recomputed supersteps).
    Recovery {
        /// Event journal to fold.
        journal: PathBuf,
        /// Explicit report sidecar for the recovery span total
        /// (auto-derived from the journal otherwise).
        report: Option<PathBuf>,
    },
    /// Compare two runs and flag regressions.
    Diff {
        /// Baseline journal.
        baseline: PathBuf,
        /// Current journal.
        journal: PathBuf,
        /// Explicit baseline report (auto-derived otherwise).
        baseline_report: Option<PathBuf>,
        /// Explicit current report (auto-derived otherwise).
        report: Option<PathBuf>,
        /// Regression thresholds.
        options: DiffOptions,
    },
}

fn unknown_flag(flag: &str, valid: &[&str]) -> String {
    format!("unknown flag {flag:?}; valid flags: {}", valid.join(", "))
}

/// Parse the arguments following `inspect`.
pub fn parse_inspect(args: &[String]) -> Result<InspectCommand, String> {
    let mut iter = args.iter();
    let view =
        iter.next().ok_or_else(|| format!("missing inspect subcommand\n\n{}", inspect_usage()))?;
    let mut flags: Vec<(String, String)> = Vec::new();
    while let Some(flag) = iter.next() {
        let value = iter.next().ok_or_else(|| format!("flag {flag} needs a value"))?;
        flags.push((flag.clone(), value.clone()));
    }
    let take = |flags: &mut Vec<(String, String)>, name: &str| -> Option<String> {
        flags.iter().position(|(f, _)| f == name).map(|i| flags.remove(i).1)
    };
    let require = |value: Option<String>, name: &str| -> Result<PathBuf, String> {
        value.map(PathBuf::from).ok_or_else(|| format!("inspect {view} requires {name} <PATH>"))
    };
    let parse_f64 = |raw: String, name: &str| -> Result<f64, String> {
        raw.parse().map_err(|_| format!("invalid value for {name}: {raw:?}"))
    };

    let command = match view.as_str() {
        "timeline" => {
            let valid = ["--journal", "--spans"];
            let journal = require(take(&mut flags, "--journal"), "--journal")?;
            let spans = take(&mut flags, "--spans").map(PathBuf::from);
            if let Some((flag, _)) = flags.first() {
                return Err(unknown_flag(flag, &valid));
            }
            InspectCommand::Timeline { journal, spans }
        }
        "profile" => {
            let valid = ["--report", "--straggler-factor"];
            let report = require(take(&mut flags, "--report"), "--report")?;
            let straggler_factor = match take(&mut flags, "--straggler-factor") {
                Some(raw) => parse_f64(raw, "--straggler-factor")?,
                None => 2.0,
            };
            if let Some((flag, _)) = flags.first() {
                return Err(unknown_flag(flag, &valid));
            }
            InspectCommand::Profile { report, straggler_factor }
        }
        "convergence" => {
            let valid = ["--journal", "--csv", "--html"];
            let journal = require(take(&mut flags, "--journal"), "--journal")?;
            let csv = take(&mut flags, "--csv").map(PathBuf::from);
            let html = take(&mut flags, "--html").map(PathBuf::from);
            if let Some((flag, _)) = flags.first() {
                return Err(unknown_flag(flag, &valid));
            }
            InspectCommand::Convergence { journal, csv, html }
        }
        "recovery" => {
            let valid = ["--journal", "--report"];
            let journal = require(take(&mut flags, "--journal"), "--journal")?;
            let report = take(&mut flags, "--report").map(PathBuf::from);
            if let Some((flag, _)) = flags.first() {
                return Err(unknown_flag(flag, &valid));
            }
            InspectCommand::Recovery { journal, report }
        }
        "diff" => {
            let valid = [
                "--baseline",
                "--journal",
                "--baseline-report",
                "--report",
                "--superstep-pct",
                "--wall-pct",
                "--redundant-steps",
                "--recovery-pct",
            ];
            let baseline = require(take(&mut flags, "--baseline"), "--baseline")?;
            let journal = require(take(&mut flags, "--journal"), "--journal")?;
            let baseline_report = take(&mut flags, "--baseline-report").map(PathBuf::from);
            let report = take(&mut flags, "--report").map(PathBuf::from);
            let mut options = DiffOptions::default();
            if let Some(raw) = take(&mut flags, "--superstep-pct") {
                options.superstep_pct = parse_f64(raw, "--superstep-pct")?;
            }
            if let Some(raw) = take(&mut flags, "--wall-pct") {
                options.wall_pct = parse_f64(raw, "--wall-pct")?;
            }
            if let Some(raw) = take(&mut flags, "--redundant-steps") {
                options.redundant_steps = raw
                    .parse()
                    .map_err(|_| format!("invalid value for --redundant-steps: {raw:?}"))?;
            }
            if let Some(raw) = take(&mut flags, "--recovery-pct") {
                options.recovery_pct = parse_f64(raw, "--recovery-pct")?;
            }
            if let Some((flag, _)) = flags.first() {
                return Err(unknown_flag(flag, &valid));
            }
            InspectCommand::Diff { baseline, journal, baseline_report, report, options }
        }
        other => {
            return Err(format!(
                "unknown inspect subcommand {other:?}; expected timeline | profile | \
                 convergence | recovery | diff\n\n{}",
                inspect_usage()
            ))
        }
    };
    Ok(command)
}

/// Parse a full argument list (without the program name).
pub fn parse_args(args: &[String]) -> Result<Invocation, String> {
    let mut iter = args.iter();
    let algorithm =
        Algorithm::parse(iter.next().ok_or_else(|| format!("missing algorithm\n\n{}", usage()))?)?;
    let mut invocation = Invocation {
        algorithm,
        graph: GraphSpec::Demo,
        strategy: Strategy::Optimistic,
        scenario: FailureScenario::none(),
        parallelism: 4,
        max_iterations: 200,
        explain_only: false,
        journal: None,
        cluster: None,
        chaos: cluster::ChaosPlan::default(),
        scale: Vec::new(),
        heartbeat_interval_ms: None,
        heartbeat_timeout_ms: None,
        step_timeout_ms: None,
        data_plane: None,
    };
    while let Some(flag) = iter.next() {
        let mut value = || iter.next().ok_or_else(|| format!("flag {flag} needs a value")).cloned();
        match flag.as_str() {
            "--graph" => invocation.graph = GraphSpec::parse(&value()?)?,
            "--strategy" => invocation.strategy = parse_strategy(&value()?)?,
            "--fail" => {
                let (superstep, partitions) = parse_failure(&value()?)?;
                invocation.scenario = invocation.scenario.fail_at(superstep, &partitions);
            }
            "--parallelism" => {
                invocation.parallelism =
                    value()?.parse().map_err(|_| "invalid parallelism".to_string())?;
            }
            "--max-iterations" => {
                invocation.max_iterations =
                    value()?.parse().map_err(|_| "invalid iteration cap".to_string())?;
            }
            "--explain" => invocation.explain_only = true,
            "--journal" => invocation.journal = Some(PathBuf::from(value()?)),
            "--cluster" => {
                let workers: usize =
                    value()?.parse().map_err(|_| "invalid worker count".to_string())?;
                if workers == 0 {
                    return Err("--cluster needs at least one worker".into());
                }
                invocation.cluster = Some(workers);
            }
            "--kill" => {
                let (superstep, worker) = parse_kill(&value()?)?;
                invocation.chaos.kills.push(cluster::KillPlan { superstep, worker });
            }
            "--chaos" => parse_chaos(&value()?, &mut invocation.chaos)?,
            "--scale" => invocation.scale.push(parse_scale(&value()?)?),
            "--heartbeat-interval-ms" => {
                invocation.heartbeat_interval_ms =
                    Some(value()?.parse().map_err(|_| "invalid heartbeat interval".to_string())?);
            }
            "--heartbeat-timeout-ms" => {
                invocation.heartbeat_timeout_ms =
                    Some(value()?.parse().map_err(|_| "invalid heartbeat timeout".to_string())?);
            }
            "--step-timeout-ms" => {
                invocation.step_timeout_ms =
                    Some(value()?.parse().map_err(|_| "invalid step timeout".to_string())?);
            }
            "--data-plane" => {
                invocation.data_plane = Some(match value()?.as_str() {
                    "direct" => cluster::DataPlaneMode::Direct,
                    "coordinator" => cluster::DataPlaneMode::Coordinator,
                    other => {
                        return Err(format!(
                            "unknown data plane {other:?}; expected direct | coordinator"
                        ))
                    }
                });
            }
            other => return Err(format!("{}\n\n{}", unknown_flag(other, RUN_FLAGS), usage())),
        }
    }
    if !invocation.chaos.is_empty() && invocation.cluster.is_none() {
        return Err("--kill/--chaos need --cluster: they disturb real worker processes".into());
    }
    if !invocation.scale.is_empty() && invocation.cluster.is_none() {
        return Err("--scale needs --cluster: it resizes real worker processes".into());
    }
    if invocation.cluster.is_none()
        && (invocation.heartbeat_interval_ms.is_some()
            || invocation.heartbeat_timeout_ms.is_some()
            || invocation.step_timeout_ms.is_some()
            || invocation.data_plane.is_some())
    {
        return Err("heartbeat/step timeouts and --data-plane only apply to --cluster runs".into());
    }
    if let Some(workers) = invocation.cluster {
        match invocation.strategy {
            Strategy::Optimistic
            | Strategy::AsyncSnapshot { .. }
            | Strategy::Checkpoint { .. }
            | Strategy::Restart => {}
            _ => {
                return Err("--cluster recovers via optimistic compensation, checkpoint:K, \
                     async-snapshot, or restart; other strategies are in-process only"
                    .into())
            }
        }
        if !invocation.scenario.is_failure_free() {
            return Err(
                "--fail simulates partition loss in-process; use --kill/--chaos with --cluster"
                    .into(),
            );
        }
        if let Some(event) =
            invocation.scale.iter().find(|event| event.workers > invocation.parallelism)
        {
            return Err(format!(
                "--scale {}:{} targets more workers than --parallelism {} partitions",
                event.superstep, event.workers, invocation.parallelism
            ));
        }
        // Parse-time worker validation: a kill aimed past the cluster used
        // to be silently clamped to the last worker — fail loudly instead.
        // Chaos may target any worker index the cluster ever has, including
        // ones a planned scale-up adds.
        let max_workers =
            invocation.scale.iter().map(|event| event.workers).chain([workers]).max().unwrap_or(1);
        if let Some(worker) = invocation.chaos.max_worker().filter(|&w| w >= max_workers) {
            return Err(format!(
                "chaos/kill spec targets worker {worker}, but this run never has more than \
                 {max_workers} workers (indices 0..={})",
                max_workers - 1
            ));
        }
    }
    Ok(invocation)
}

/// One `optirec serve` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeInvocation {
    /// The maintained algorithm (cc or pagerank).
    pub algorithm: Algorithm,
    /// The initial graph.
    pub graph: GraphSpec,
    /// Partitions per epoch run.
    pub parallelism: usize,
    /// Superstep cap per epoch run.
    pub max_iterations: u32,
    /// Replay this mutation file against the engine after bootstrap.
    pub replay: Option<PathBuf>,
    /// Serve the line protocol over TCP on this address after the replay.
    pub listen: Option<String>,
    /// With `--listen`: stop after this many seconds (forever otherwise).
    pub serve_seconds: Option<u64>,
    /// Capture telemetry and write the journal (plus sidecars) there on
    /// exit.
    pub journal: Option<PathBuf>,
    /// Failure injection into one epoch's (re-)convergence.
    pub inject: Option<serve::EpochInjection>,
    /// Elastic worker range (`--min-workers`/`--max-workers`): epochs run
    /// on worker processes sized by the load-driven controller, and the
    /// `scale N` verb sets the target for the next commit.
    pub elastic: Option<serve::ElasticRange>,
}

/// Usage text of the `serve` subcommand.
pub fn serve_usage() -> &'static str {
    "optirec serve — incremental serving engine with live graph mutations

USAGE:
    optirec serve <cc|pagerank> [OPTIONS]

OPTIONS:
    --graph <SPEC>        demo | twitter:N | grid:WxH | path:N | file:PATH   [demo]
    --parallelism <N>     partitions per epoch run   [4]
    --max-iterations <N>  superstep cap per epoch run   [200]
    --replay <PATH>       replay a mutation file after the bootstrap
                          convergence (the line protocol, one command per line)
    --listen <ADDR>       serve the line protocol over TCP (e.g. 127.0.0.1:7878;
                          port 0 picks a free port)
    --serve-seconds <N>   with --listen: stop after N seconds   [forever]
    --journal <PATH>      capture telemetry across all epochs; written on exit
                          (with --listen this requires --serve-seconds, since
                          an unbounded run never exits)
    --inject <SPEC>       fail one epoch's (re-)convergence:
                            panic:E:S          UDF panic at superstep S of epoch E
                            fail:E:S:P1,P2     destroy partitions at superstep S
                            mtbf:E:PROB:SEED   seeded random failures all epoch
                            kill:E:S:W:N       run epoch E on N worker processes,
                                               SIGKILL worker W at superstep S
    --min-workers <N>     with --max-workers: run every epoch on worker
                          processes, elastically sized between N and the
                          maximum — the controller grows the cluster under
                          epoch-latency pressure and shrinks it when idle;
                          `scale N` sets the target explicitly
    --max-workers <N>     upper bound of the elastic range (at most
                          --parallelism)

LINE PROTOCOL (TCP and replay files):
    + u v    stage an edge insert        get v    point query
    - u v    stage an edge delete        top n    largest components / top ranks
    commit   apply the batch: incremental re-convergence
    scale n  set the elastic worker target (needs --min/--max-workers;
             the rescale fires at the next commit's first barrier)
    stats    one-line introspection snapshot (epoch, staged batch, queries);
             `optirec top --connect ADDR` polls it for you
    quit     end the session

EXAMPLES:
    optirec serve cc --graph path:64 --replay mutations.txt --journal results/serve_journal.jsonl
    optirec serve cc --listen 127.0.0.1:7878
    optirec serve cc --min-workers 2 --max-workers 4 --replay m.txt --journal results/j.jsonl
    optirec serve pagerank --replay m.txt --inject panic:1:2
"
}

/// Parse an injection spec (see [`serve_usage`]).
pub fn parse_inject(raw: &str) -> Result<serve::EpochInjection, String> {
    let bad = || format!("invalid inject spec {raw:?}; see `optirec serve --help`");
    let mut parts = raw.split(':');
    let kind = parts.next().ok_or_else(bad)?;
    let fields: Vec<&str> = parts.collect();
    let num = |s: &str| -> Result<u64, String> { s.parse().map_err(|_| bad()) };
    let (epoch, kind) = match (kind, fields.as_slice()) {
        ("panic", [epoch, superstep]) => {
            (num(epoch)?, serve::InjectionKind::Panic { superstep: num(superstep)? as u32 })
        }
        ("fail", [epoch, superstep, partitions]) => {
            let partitions: Result<Vec<usize>, String> =
                partitions.split(',').map(|p| num(p).map(|v| v as usize)).collect();
            (
                num(epoch)?,
                serve::InjectionKind::Fail {
                    superstep: num(superstep)? as u32,
                    partitions: partitions?,
                },
            )
        }
        ("mtbf", [epoch, probability, seed]) => {
            let probability: f64 = probability.parse().map_err(|_| bad())?;
            if !(0.0..=1.0).contains(&probability) {
                return Err(bad());
            }
            (num(epoch)?, serve::InjectionKind::Mtbf { probability, seed: num(seed)? })
        }
        ("kill", [epoch, superstep, worker, workers]) => (
            num(epoch)?,
            serve::InjectionKind::ClusterKill {
                workers: num(workers)? as usize,
                superstep: num(superstep)? as u32,
                worker: num(worker)? as usize,
            },
        ),
        _ => return Err(bad()),
    };
    Ok(serve::EpochInjection { epoch: epoch as u32, kind })
}

/// Valid flags of the serve subcommand.
pub const SERVE_FLAGS: &[&str] = &[
    "--graph",
    "--parallelism",
    "--max-iterations",
    "--replay",
    "--listen",
    "--serve-seconds",
    "--journal",
    "--inject",
    "--min-workers",
    "--max-workers",
];

/// Parse the arguments following `serve`.
pub fn parse_serve(args: &[String]) -> Result<ServeInvocation, String> {
    let mut iter = args.iter();
    let algorithm = Algorithm::parse(
        iter.next().ok_or_else(|| format!("missing serve algorithm\n\n{}", serve_usage()))?,
    )?;
    if !matches!(algorithm, Algorithm::ConnectedComponents | Algorithm::PageRank) {
        return Err(format!("serve supports cc and pagerank, not {algorithm:?}"));
    }
    let mut invocation = ServeInvocation {
        algorithm,
        graph: GraphSpec::Demo,
        parallelism: 4,
        max_iterations: 200,
        replay: None,
        listen: None,
        serve_seconds: None,
        journal: None,
        inject: None,
        elastic: None,
    };
    let mut min_workers: Option<usize> = None;
    let mut max_workers: Option<usize> = None;
    while let Some(flag) = iter.next() {
        let mut value = || iter.next().ok_or_else(|| format!("flag {flag} needs a value")).cloned();
        match flag.as_str() {
            "--graph" => invocation.graph = GraphSpec::parse(&value()?)?,
            "--parallelism" => {
                invocation.parallelism =
                    value()?.parse().map_err(|_| "invalid parallelism".to_string())?;
            }
            "--max-iterations" => {
                invocation.max_iterations =
                    value()?.parse().map_err(|_| "invalid iteration cap".to_string())?;
            }
            "--replay" => invocation.replay = Some(PathBuf::from(value()?)),
            "--listen" => invocation.listen = Some(value()?),
            "--serve-seconds" => {
                invocation.serve_seconds =
                    Some(value()?.parse().map_err(|_| "invalid serve duration".to_string())?);
            }
            "--journal" => invocation.journal = Some(PathBuf::from(value()?)),
            "--inject" => invocation.inject = Some(parse_inject(&value()?)?),
            "--min-workers" => {
                min_workers =
                    Some(value()?.parse().map_err(|_| "invalid minimum worker count".to_string())?);
            }
            "--max-workers" => {
                max_workers =
                    Some(value()?.parse().map_err(|_| "invalid maximum worker count".to_string())?);
            }
            other => {
                return Err(format!("{}\n\n{}", unknown_flag(other, SERVE_FLAGS), serve_usage()))
            }
        }
    }
    invocation.elastic = match (min_workers, max_workers) {
        (Some(min_workers), Some(max_workers)) => {
            if min_workers > max_workers {
                return Err(format!(
                    "--min-workers {min_workers} exceeds --max-workers {max_workers}"
                ));
            }
            Some(serve::ElasticRange { min_workers, max_workers })
        }
        (None, None) => None,
        _ => {
            return Err(
                "--min-workers and --max-workers come as a pair: they bound the elastic range"
                    .into(),
            )
        }
    };
    if invocation.replay.is_none() && invocation.listen.is_none() {
        return Err("serve needs --replay and/or --listen (otherwise it converges once and exits \
                    with nothing to do)"
            .into());
    }
    if invocation.journal.is_some()
        && invocation.listen.is_some()
        && invocation.serve_seconds.is_none()
    {
        return Err("--journal is written on exit, which an unbounded --listen run never reaches \
                    (killing the daemon would discard the captured telemetry); add \
                    --serve-seconds <N> to bound the run"
            .into());
    }
    Ok(invocation)
}

/// One `optirec top` invocation: render a plain-text metrics snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopInvocation {
    /// Render a saved report sidecar (one shot).
    pub report: Option<PathBuf>,
    /// Query a live serve daemon's `stats` command over TCP.
    pub connect: Option<String>,
    /// Render once and exit (otherwise `--connect` repeats forever).
    pub once: bool,
    /// Refresh interval for a repeating `--connect` session.
    pub interval_ms: u64,
}

/// Valid flags of the top subcommand.
pub const TOP_FLAGS: &[&str] = &["--report", "--connect", "--once", "--interval-ms"];

/// Parse the arguments following `top`.
pub fn parse_top(args: &[String]) -> Result<TopInvocation, String> {
    let mut invocation =
        TopInvocation { report: None, connect: None, once: false, interval_ms: 2000 };
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = || iter.next().ok_or_else(|| format!("flag {flag} needs a value")).cloned();
        match flag.as_str() {
            "--report" => invocation.report = Some(PathBuf::from(value()?)),
            "--connect" => invocation.connect = Some(value()?),
            "--once" => invocation.once = true,
            "--interval-ms" => {
                invocation.interval_ms =
                    value()?.parse().map_err(|_| "invalid refresh interval".to_string())?;
            }
            other => return Err(unknown_flag(other, TOP_FLAGS)),
        }
    }
    if invocation.report.is_some() == invocation.connect.is_some() {
        return Err("top needs exactly one source: --report <PATH> (a saved sidecar) or \
             --connect <ADDR> (a live serve daemon)"
            .into());
    }
    Ok(invocation)
}

/// Parse the arguments following `worker`; returns the listen address.
pub fn parse_worker(args: &[String]) -> Result<String, String> {
    let mut listen = "127.0.0.1:0".to_string();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--listen" => {
                listen =
                    iter.next().ok_or_else(|| "flag --listen needs a value".to_string())?.clone();
            }
            other => return Err(unknown_flag(other, &["--listen"])),
        }
    }
    Ok(listen)
}

/// Assemble the cluster config of an invocation: defaults, then `OPTIREC_*`
/// environment overrides, then explicit flags (flags win).
pub fn cluster_config(invocation: &Invocation, workers: usize) -> cluster::ClusterConfig {
    use std::time::Duration;
    let mut cfg =
        cluster::ClusterConfig::new(workers, invocation.parallelism, invocation.max_iterations)
            .with_env_timing();
    if let Some(ms) = invocation.heartbeat_interval_ms {
        cfg = cfg.with_heartbeat_interval(Duration::from_millis(ms));
    }
    if let Some(ms) = invocation.heartbeat_timeout_ms {
        cfg = cfg.with_heartbeat_timeout(Duration::from_millis(ms));
    }
    if let Some(ms) = invocation.step_timeout_ms {
        cfg = cfg.with_step_timeout(Duration::from_millis(ms));
    }
    cfg.chaos = invocation.chaos.clone();
    cfg.scale = invocation.scale.clone();
    match invocation.strategy {
        Strategy::AsyncSnapshot { interval } => {
            cfg.strategy = cluster::ClusterStrategy::AsyncSnapshot { interval };
        }
        Strategy::Checkpoint { interval } => {
            cfg.strategy = cluster::ClusterStrategy::Checkpoint { interval };
        }
        Strategy::Restart => cfg.strategy = cluster::ClusterStrategy::Restart,
        _ => {}
    }
    if let Some(mode) = invocation.data_plane {
        cfg = cfg.with_data_plane(mode);
    }
    cfg
}

/// Assemble the fault-tolerance config of an invocation.
pub fn ft_config(invocation: &Invocation) -> algos::FtConfig {
    algos::FtConfig {
        strategy: invocation.strategy,
        scenario: invocation.scenario.clone(),
        checkpoint_cost: CostModel::distributed_fs(),
        checkpoint_on_disk: false,
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_a_full_invocation() {
        let invocation = parse_args(&args(&[
            "cc",
            "--graph",
            "twitter:5000",
            "--strategy",
            "checkpoint:2",
            "--fail",
            "3:1,2",
            "--fail",
            "5:0",
            "--parallelism",
            "8",
        ]))
        .unwrap();
        assert_eq!(invocation.algorithm, Algorithm::ConnectedComponents);
        assert_eq!(invocation.graph, GraphSpec::Twitter(5000));
        assert_eq!(invocation.strategy, Strategy::Checkpoint { interval: 2 });
        assert_eq!(invocation.parallelism, 8);
        assert_eq!(invocation.scenario.events().len(), 2);
    }

    #[test]
    fn defaults_are_sane() {
        let invocation = parse_args(&args(&["pagerank"])).unwrap();
        assert_eq!(invocation.algorithm, Algorithm::PageRank);
        assert_eq!(invocation.graph, GraphSpec::Demo);
        assert_eq!(invocation.strategy, Strategy::Optimistic);
        assert!(invocation.scenario.is_failure_free());
        assert!(!invocation.explain_only);
    }

    #[test]
    fn rejects_unknown_inputs() {
        assert!(parse_args(&args(&["frobnicate"])).is_err());
        assert!(parse_args(&args(&["cc", "--strategy", "lineage"])).is_err());
        assert!(parse_args(&args(&["cc", "--graph", "torus:9"])).is_err());
        assert!(parse_args(&args(&["cc", "--fail", "nope"])).is_err());
        assert!(parse_args(&args(&["cc", "--fail"])).is_err());
        assert!(parse_args(&args(&["cc", "--wat", "9"])).is_err());
        assert!(parse_args(&[]).is_err());
    }

    #[test]
    fn graph_specs_parse() {
        assert_eq!(GraphSpec::parse("grid:3x4").unwrap(), GraphSpec::Grid(3, 4));
        assert_eq!(GraphSpec::parse("path:10").unwrap(), GraphSpec::Path(10));
        assert_eq!(
            GraphSpec::parse("file:/tmp/g.txt").unwrap(),
            GraphSpec::File("/tmp/g.txt".into())
        );
        assert!(GraphSpec::parse("grid:3").is_err());
        assert!(GraphSpec::parse("twitter:abc").is_err());
    }

    #[test]
    fn strategy_specs_parse() {
        assert_eq!(
            parse_strategy("incremental:4").unwrap(),
            Strategy::IncrementalCheckpoint { full_interval: 4 }
        );
        assert_eq!(parse_strategy("restart").unwrap(), Strategy::Restart);
        assert!(parse_strategy("checkpoint:x").is_err());
    }

    #[test]
    fn failure_specs_parse() {
        assert_eq!(parse_failure("3:1,2").unwrap(), (3, vec![1, 2]));
        assert_eq!(parse_failure("0:0").unwrap(), (0, vec![0]));
        assert!(parse_failure("3:").is_err());
        assert!(parse_failure("3").is_err());
    }

    #[test]
    fn demo_graphs_build_per_algorithm() {
        let cc = GraphSpec::Demo.build(Algorithm::ConnectedComponents).unwrap();
        assert!(!cc.is_directed());
        let pr = GraphSpec::Demo.build(Algorithm::PageRank).unwrap();
        assert!(pr.is_directed());
        let grid = GraphSpec::Grid(3, 3).build(Algorithm::Sssp).unwrap();
        assert_eq!(grid.num_vertices(), 9);
    }

    #[test]
    fn ft_config_carries_strategy_and_scenario() {
        let invocation =
            parse_args(&args(&["cc", "--strategy", "incremental:4", "--fail", "2:1"])).unwrap();
        let ft = ft_config(&invocation);
        assert_eq!(ft.strategy, Strategy::IncrementalCheckpoint { full_interval: 4 });
        assert_eq!(ft.scenario.events(), &[(2, vec![1])]);
    }

    #[test]
    fn journal_flag_parses_and_unknown_flags_list_the_valid_set() {
        let invocation = parse_args(&args(&["cc", "--journal", "/tmp/run_journal.jsonl"])).unwrap();
        assert_eq!(invocation.journal, Some(PathBuf::from("/tmp/run_journal.jsonl")));

        let err = parse_args(&args(&["cc", "--journl", "x"])).unwrap_err();
        assert!(err.contains("unknown flag \"--journl\""), "{err}");
        assert!(err.contains("--journal"), "{err}");
        assert!(err.contains("--strategy"), "{err}");
    }

    #[test]
    fn inspect_subcommands_parse() {
        let cmd = parse_inspect(&args(&["timeline", "--journal", "j.jsonl"])).unwrap();
        assert_eq!(
            cmd,
            InspectCommand::Timeline { journal: PathBuf::from("j.jsonl"), spans: None }
        );

        let cmd =
            parse_inspect(&args(&["convergence", "--journal", "j.jsonl", "--csv", "out.csv"]))
                .unwrap();
        match cmd {
            InspectCommand::Convergence { journal, csv, html } => {
                assert_eq!(journal, PathBuf::from("j.jsonl"));
                assert_eq!(csv, Some(PathBuf::from("out.csv")));
                assert_eq!(html, None);
            }
            other => panic!("unexpected {other:?}"),
        }

        let cmd = parse_inspect(&args(&[
            "diff",
            "--baseline",
            "a.jsonl",
            "--journal",
            "b.jsonl",
            "--redundant-steps",
            "2",
            "--wall-pct",
            "50",
        ]))
        .unwrap();
        match cmd {
            InspectCommand::Diff { options, .. } => {
                assert_eq!(options.redundant_steps, 2);
                assert_eq!(options.wall_pct, 50.0);
                assert_eq!(options.superstep_pct, 0.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn inspect_recovery_parses() {
        let cmd = parse_inspect(&args(&["recovery", "--journal", "j.jsonl"])).unwrap();
        assert_eq!(
            cmd,
            InspectCommand::Recovery { journal: PathBuf::from("j.jsonl"), report: None }
        );
        let cmd = parse_inspect(&args(&["recovery", "--journal", "j.jsonl", "--report", "r.json"]))
            .unwrap();
        assert_eq!(
            cmd,
            InspectCommand::Recovery {
                journal: PathBuf::from("j.jsonl"),
                report: Some(PathBuf::from("r.json")),
            }
        );
        assert!(parse_inspect(&args(&["recovery"])).is_err());
        let err = parse_inspect(&args(&["recovery", "--journal", "j", "--wat", "1"])).unwrap_err();
        assert!(err.contains("--report"), "{err}");
    }

    #[test]
    fn top_invocations_parse_and_require_one_source() {
        let invocation = parse_top(&args(&["--report", "r.json", "--once"])).unwrap();
        assert_eq!(invocation.report, Some(PathBuf::from("r.json")));
        assert!(invocation.once);
        assert_eq!(invocation.interval_ms, 2000);

        let invocation =
            parse_top(&args(&["--connect", "127.0.0.1:7878", "--interval-ms", "500"])).unwrap();
        assert_eq!(invocation.connect, Some("127.0.0.1:7878".to_string()));
        assert!(!invocation.once);
        assert_eq!(invocation.interval_ms, 500);

        assert!(parse_top(&[]).is_err(), "needs a source");
        assert!(
            parse_top(&args(&["--report", "r.json", "--connect", "x"])).is_err(),
            "sources are exclusive"
        );
        assert!(parse_top(&args(&["--wat", "1"])).is_err());
    }

    #[test]
    fn inspect_rejects_bad_invocations_listing_valid_flags() {
        assert!(parse_inspect(&[]).is_err());
        assert!(parse_inspect(&args(&["frob"])).is_err());
        // Missing the required journal.
        assert!(parse_inspect(&args(&["timeline"])).is_err());
        // Unknown flag errors name the valid set.
        let err =
            parse_inspect(&args(&["profile", "--report", "r.json", "--wat", "1"])).unwrap_err();
        assert!(err.contains("--straggler-factor"), "{err}");
        let err = parse_inspect(&args(&["diff", "--baseline", "a", "--journal", "b", "--x", "1"]))
            .unwrap_err();
        assert!(err.contains("--recovery-pct"), "{err}");
    }

    #[test]
    fn timing_flags_parse_and_reach_the_cluster_config() {
        use std::time::Duration;
        let invocation = parse_args(&args(&[
            "cc",
            "--cluster",
            "2",
            "--heartbeat-interval-ms",
            "250",
            "--heartbeat-timeout-ms",
            "20000",
            "--step-timeout-ms",
            "120000",
        ]))
        .unwrap();
        let cfg = cluster_config(&invocation, 2);
        assert_eq!(cfg.heartbeat_interval, Duration::from_millis(250));
        assert_eq!(cfg.heartbeat_timeout, Duration::from_secs(20));
        assert_eq!(cfg.step_timeout, Duration::from_secs(120));

        // Only meaningful on cluster runs.
        let err = parse_args(&args(&["cc", "--step-timeout-ms", "5000"])).unwrap_err();
        assert!(err.contains("--cluster"), "{err}");
        assert!(
            parse_args(&args(&["cc", "--cluster", "2", "--heartbeat-timeout-ms", "x"])).is_err()
        );
    }

    #[test]
    fn cluster_flags_parse_and_cross_validate() {
        let invocation = parse_args(&args(&["cc", "--cluster", "2", "--kill", "3:1"])).unwrap();
        assert_eq!(invocation.cluster, Some(2));
        assert_eq!(invocation.chaos.kills, vec![cluster::KillPlan { superstep: 3, worker: 1 }]);

        // Repeated --kill flags compose into one chaos plan.
        let invocation =
            parse_args(&args(&["cc", "--cluster", "2", "--kill", "3:1", "--kill", "5:0"])).unwrap();
        assert_eq!(
            invocation.chaos.kills,
            vec![
                cluster::KillPlan { superstep: 3, worker: 1 },
                cluster::KillPlan { superstep: 5, worker: 0 },
            ]
        );

        // --kill without --cluster, zero workers, and combinations that the
        // multi-process backend cannot honor are rejected with guidance.
        assert!(parse_args(&args(&["cc", "--kill", "3:1"])).is_err());
        assert!(parse_args(&args(&["cc", "--cluster", "0"])).is_err());
        assert!(parse_args(&args(&["cc", "--cluster", "x"])).is_err());
        let err = parse_args(&args(&["cc", "--cluster", "2", "--strategy", "ignore"])).unwrap_err();
        assert!(err.contains("optimistic"), "{err}");
        let err = parse_args(&args(&["cc", "--cluster", "2", "--strategy", "incremental:2"]))
            .unwrap_err();
        assert!(err.contains("in-process only"), "{err}");
        let err = parse_args(&args(&["cc", "--cluster", "2", "--fail", "1:0"])).unwrap_err();
        assert!(err.contains("--kill"), "{err}");
        assert!(parse_kill("2").is_err());
        assert!(parse_kill("a:1").is_err());

        // Worker indices are validated at parse time, not clamped at kill
        // time: worker 2 does not exist in a 2-worker cluster.
        let err = parse_args(&args(&["cc", "--cluster", "2", "--kill", "3:2"])).unwrap_err();
        assert!(err.contains("worker 2"), "{err}");
        assert!(err.contains("0..=1"), "{err}");

        // Rollback strategies also run on the cluster and map onto the
        // cluster-side strategy enum.
        let invocation =
            parse_args(&args(&["cc", "--cluster", "2", "--strategy", "async-snapshot:3"])).unwrap();
        assert_eq!(invocation.strategy, Strategy::AsyncSnapshot { interval: 3 });
        let cfg = cluster_config(&invocation, 2);
        assert_eq!(cfg.strategy, cluster::ClusterStrategy::AsyncSnapshot { interval: 3 });
        let invocation =
            parse_args(&args(&["cc", "--cluster", "2", "--strategy", "checkpoint:2"])).unwrap();
        let cfg = cluster_config(&invocation, 2);
        assert_eq!(cfg.strategy, cluster::ClusterStrategy::Checkpoint { interval: 2 });
        let invocation =
            parse_args(&args(&["cc", "--cluster", "2", "--strategy", "restart"])).unwrap();
        let cfg = cluster_config(&invocation, 2);
        assert_eq!(cfg.strategy, cluster::ClusterStrategy::Restart);
    }

    #[test]
    fn scale_flags_parse_and_cross_validate() {
        let invocation =
            parse_args(&args(&["cc", "--cluster", "2", "--scale", "2:4", "--scale", "5:2"]))
                .unwrap();
        assert_eq!(
            invocation.scale,
            vec![
                cluster::ScaleEvent { superstep: 2, workers: 4 },
                cluster::ScaleEvent { superstep: 5, workers: 2 },
            ]
        );
        // The scale plan lands in the cluster config unchanged.
        let cfg = cluster_config(&invocation, 2);
        assert_eq!(cfg.scale, invocation.scale);

        // Chaos may target a worker index only a scale-up adds...
        let invocation =
            parse_args(&args(&["cc", "--cluster", "2", "--scale", "1:4", "--kill", "3:3"]))
                .unwrap();
        assert_eq!(invocation.chaos.kills, vec![cluster::KillPlan { superstep: 3, worker: 3 }]);
        // ...but not one beyond the scale ceiling.
        let err = parse_args(&args(&["cc", "--cluster", "2", "--scale", "1:3", "--kill", "2:3"]))
            .unwrap_err();
        assert!(err.contains("never has more than 3 workers"), "{err}");

        // --scale needs --cluster, targets are bounded by the parallelism,
        // and specs must be well-formed.
        let err = parse_args(&args(&["cc", "--scale", "2:4"])).unwrap_err();
        assert!(err.contains("--cluster"), "{err}");
        let err = parse_args(&args(&["cc", "--cluster", "2", "--scale", "2:9"])).unwrap_err();
        assert!(err.contains("--parallelism 4"), "{err}");
        assert!(parse_scale("2").is_err());
        assert!(parse_scale("2:0").is_err());
        assert!(parse_scale("x:2").is_err());
    }

    #[test]
    fn serve_elastic_flags_parse_as_a_pair() {
        let invocation = parse_serve(&args(&[
            "cc",
            "--replay",
            "m.txt",
            "--min-workers",
            "2",
            "--max-workers",
            "4",
        ]))
        .unwrap();
        assert_eq!(
            invocation.elastic,
            Some(serve::ElasticRange { min_workers: 2, max_workers: 4 })
        );
        let invocation = parse_serve(&args(&["cc", "--replay", "m.txt"])).unwrap();
        assert_eq!(invocation.elastic, None);
        let err =
            parse_serve(&args(&["cc", "--replay", "m.txt", "--min-workers", "2"])).unwrap_err();
        assert!(err.contains("pair"), "{err}");
        let err = parse_serve(&args(&["cc", "--listen", "x", "--max-workers", "4"])).unwrap_err();
        assert!(err.contains("pair"), "{err}");
        let err = parse_serve(&args(&[
            "cc",
            "--replay",
            "m.txt",
            "--min-workers",
            "4",
            "--max-workers",
            "2",
        ]))
        .unwrap_err();
        assert!(err.contains("--min-workers 4 exceeds --max-workers 2"), "{err}");
    }

    #[test]
    fn data_plane_flag_parses_and_cross_validates() {
        // The direct data plane is the default; the flag can pin either mode.
        let invocation = parse_args(&args(&["cc", "--cluster", "2"])).unwrap();
        assert_eq!(invocation.data_plane, None);
        assert_eq!(cluster_config(&invocation, 2).data_plane, cluster::DataPlaneMode::Direct);

        let invocation =
            parse_args(&args(&["cc", "--cluster", "2", "--data-plane", "coordinator"])).unwrap();
        assert_eq!(invocation.data_plane, Some(cluster::DataPlaneMode::Coordinator));
        assert_eq!(cluster_config(&invocation, 2).data_plane, cluster::DataPlaneMode::Coordinator);

        let invocation =
            parse_args(&args(&["cc", "--cluster", "2", "--data-plane", "direct"])).unwrap();
        assert_eq!(cluster_config(&invocation, 2).data_plane, cluster::DataPlaneMode::Direct);

        // Nonsense modes and --data-plane without --cluster are rejected.
        let err = parse_args(&args(&["cc", "--cluster", "2", "--data-plane", "carrier-pigeon"]))
            .unwrap_err();
        assert!(err.contains("direct | coordinator"), "{err}");
        let err = parse_args(&args(&["cc", "--data-plane", "direct"])).unwrap_err();
        assert!(err.contains("--cluster"), "{err}");
    }

    #[test]
    fn chaos_specs_parse_and_cross_validate() {
        let invocation = parse_args(&args(&[
            "cc",
            "--cluster",
            "3",
            "--chaos",
            "kill@2:0,1; slow@3-5:2:50 ;delay@1-2:0:10;drop@4-6:1:0.5:99",
        ]))
        .unwrap();
        assert_eq!(
            invocation.chaos.kills,
            vec![
                cluster::KillPlan { superstep: 2, worker: 0 },
                cluster::KillPlan { superstep: 2, worker: 1 },
            ]
        );
        assert_eq!(
            invocation.chaos.stragglers,
            vec![cluster::StragglerPlan {
                from: 3,
                to: 5,
                worker: 2,
                delay: std::time::Duration::from_millis(50),
            }]
        );
        assert_eq!(invocation.chaos.links.len(), 2);
        assert_eq!(invocation.chaos.links[0].delay, std::time::Duration::from_millis(10));
        assert_eq!(invocation.chaos.links[0].drop_probability, 0.0);
        assert_eq!(invocation.chaos.links[1].drop_probability, 0.5);
        assert_eq!(invocation.chaos.links[1].seed, 99);

        // The chaos plan lands in the cluster config unchanged.
        let cfg = cluster_config(&invocation, 3);
        assert_eq!(cfg.chaos, invocation.chaos);

        // Malformed scenarios are rejected with the offending spec echoed.
        let mut plan = cluster::ChaosPlan::default();
        assert!(parse_chaos("kill@2", &mut plan).is_err());
        assert!(parse_chaos("slow@5-3:0:10", &mut plan).is_err(), "backwards range");
        assert!(parse_chaos("drop@1-2:0:1.5:9", &mut plan).is_err(), "probability > 1");
        assert!(parse_chaos("wat@1:0", &mut plan).is_err());
        assert!(parse_chaos("@/nonexistent/chaos.txt", &mut plan).is_err());

        // Chaos without --cluster, and out-of-range workers, are rejected.
        assert!(parse_args(&args(&["cc", "--chaos", "kill@2:0"])).is_err());
        let err =
            parse_args(&args(&["cc", "--cluster", "2", "--chaos", "slow@1-2:5:10"])).unwrap_err();
        assert!(err.contains("worker 5"), "{err}");
    }

    #[test]
    fn chaos_scenario_files_parse() {
        let dir = std::env::temp_dir().join("optirec-chaos-spec-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("storm.chaos");
        std::fs::write(&path, "# a storm plus a straggler\nkill@2:0,1\n\nslow@3-4:2:25\n").unwrap();
        let invocation = parse_args(&args(&[
            "cc",
            "--cluster",
            "3",
            "--chaos",
            &format!("@{}", path.display()),
        ]))
        .unwrap();
        assert_eq!(invocation.chaos.kills.len(), 2);
        assert_eq!(invocation.chaos.stragglers.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_invocations_parse() {
        let invocation = parse_serve(&args(&[
            "cc",
            "--graph",
            "path:64",
            "--replay",
            "m.txt",
            "--journal",
            "j.jsonl",
            "--inject",
            "panic:1:2",
        ]))
        .unwrap();
        assert_eq!(invocation.algorithm, Algorithm::ConnectedComponents);
        assert_eq!(invocation.graph, GraphSpec::Path(64));
        assert_eq!(invocation.replay, Some(PathBuf::from("m.txt")));
        assert_eq!(
            invocation.inject,
            Some(serve::EpochInjection {
                epoch: 1,
                kind: serve::InjectionKind::Panic { superstep: 2 }
            })
        );

        let invocation =
            parse_serve(&args(&["pagerank", "--listen", "127.0.0.1:0", "--serve-seconds", "5"]))
                .unwrap();
        assert_eq!(invocation.listen, Some("127.0.0.1:0".to_string()));
        assert_eq!(invocation.serve_seconds, Some(5));

        // Needs something to do, cc/pagerank only, and flags must be known.
        assert!(parse_serve(&args(&["cc"])).unwrap_err().contains("--replay"));
        assert!(parse_serve(&args(&["sssp", "--listen", "x"])).is_err());
        assert!(parse_serve(&args(&["cc", "--listen", "x", "--wat", "1"])).is_err());

        // A journal needs a run that exits: unbounded --listen never does.
        let err = parse_serve(&args(&["cc", "--listen", "x", "--journal", "j.jsonl"])).unwrap_err();
        assert!(err.contains("--serve-seconds"), "{err}");
        assert!(parse_serve(&args(&[
            "cc",
            "--listen",
            "x",
            "--journal",
            "j.jsonl",
            "--serve-seconds",
            "5",
        ]))
        .is_ok());
        assert!(
            parse_serve(&args(&["cc", "--replay", "m.txt", "--journal", "j.jsonl"])).is_ok(),
            "a replay run always exits, so it may journal without a time bound"
        );
    }

    #[test]
    fn inject_specs_parse() {
        assert_eq!(
            parse_inject("fail:2:3:0,1").unwrap(),
            serve::EpochInjection {
                epoch: 2,
                kind: serve::InjectionKind::Fail { superstep: 3, partitions: vec![0, 1] }
            }
        );
        assert_eq!(
            parse_inject("mtbf:1:0.5:42").unwrap(),
            serve::EpochInjection {
                epoch: 1,
                kind: serve::InjectionKind::Mtbf { probability: 0.5, seed: 42 }
            }
        );
        assert_eq!(
            parse_inject("kill:1:2:0:2").unwrap(),
            serve::EpochInjection {
                epoch: 1,
                kind: serve::InjectionKind::ClusterKill { workers: 2, superstep: 2, worker: 0 }
            }
        );
        assert!(parse_inject("panic:1").is_err());
        assert!(parse_inject("mtbf:1:2.0:42").is_err(), "probability must be in [0, 1]");
        assert!(parse_inject("frob:1:2").is_err());
    }

    #[test]
    fn worker_args_parse() {
        assert_eq!(parse_worker(&[]).unwrap(), "127.0.0.1:0");
        assert_eq!(parse_worker(&args(&["--listen", "0.0.0.0:7000"])).unwrap(), "0.0.0.0:7000");
        assert!(parse_worker(&args(&["--listen"])).is_err());
        assert!(parse_worker(&args(&["--port", "7000"])).is_err());
    }

    #[test]
    fn twitter_spec_builds_a_graph_of_requested_size() {
        let graph = GraphSpec::Twitter(200).build(Algorithm::ConnectedComponents).unwrap();
        assert_eq!(graph.num_vertices(), 200);
        assert!(!graph.is_directed());
    }
}
