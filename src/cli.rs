//! Command-line interface of the `optirec` demo launcher — the terminal
//! analog of the paper's demo application, where conference attendees pick
//! an algorithm, an input graph, the partitions to fail and the iterations
//! to fail them in.
//!
//! Hand-rolled argument parsing (no CLI dependency): subcommand + `--key
//! value` options.

use std::path::PathBuf;

use flowscope::DiffOptions;
use recovery::checkpoint::CostModel;
use recovery::scenario::FailureScenario;
use recovery::strategy::Strategy;

/// Which demo to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // variant names mirror the algorithm names
pub enum Algorithm {
    ConnectedComponents,
    PageRank,
    Sssp,
    Reachability,
    KMeans,
    Jacobi,
    Als,
}

impl Algorithm {
    fn parse(raw: &str) -> Result<Self, String> {
        match raw {
            "cc" | "connected-components" => Ok(Algorithm::ConnectedComponents),
            "pagerank" | "pr" => Ok(Algorithm::PageRank),
            "sssp" => Ok(Algorithm::Sssp),
            "reachability" | "reach" => Ok(Algorithm::Reachability),
            "kmeans" => Ok(Algorithm::KMeans),
            "jacobi" => Ok(Algorithm::Jacobi),
            "als" => Ok(Algorithm::Als),
            other => Err(format!("unknown algorithm {other:?}")),
        }
    }
}

/// Which input graph to run on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphSpec {
    /// The paper's small hand-crafted graph for the chosen algorithm.
    Demo,
    /// Twitter-like preferential-attachment graph with `n` vertices.
    Twitter(usize),
    /// `w x h` grid.
    Grid(usize, usize),
    /// Path with `n` vertices.
    Path(usize),
    /// Load an edge list from a file.
    File(String),
}

impl GraphSpec {
    fn parse(raw: &str) -> Result<Self, String> {
        if raw == "demo" {
            return Ok(GraphSpec::Demo);
        }
        if let Some(n) = raw.strip_prefix("twitter:") {
            return n
                .parse()
                .map(GraphSpec::Twitter)
                .map_err(|_| format!("invalid twitter size {n:?}"));
        }
        if let Some(dims) = raw.strip_prefix("grid:") {
            let (w, h) = dims
                .split_once('x')
                .ok_or_else(|| format!("grid spec must be grid:WxH, got {raw:?}"))?;
            let w = w.parse().map_err(|_| format!("invalid grid width {w:?}"))?;
            let h = h.parse().map_err(|_| format!("invalid grid height {h:?}"))?;
            return Ok(GraphSpec::Grid(w, h));
        }
        if let Some(n) = raw.strip_prefix("path:") {
            return n.parse().map(GraphSpec::Path).map_err(|_| format!("invalid path size {n:?}"));
        }
        if let Some(path) = raw.strip_prefix("file:") {
            return Ok(GraphSpec::File(path.to_string()));
        }
        Err(format!(
            "unknown graph {raw:?}; expected demo | twitter:N | grid:WxH | path:N | file:PATH"
        ))
    }

    /// Build/load the graph. `directed_default` picks edge direction for
    /// algorithms that care (PageRank uses directed demo input).
    pub fn build(&self, algorithm: Algorithm) -> Result<graphs::Graph, String> {
        Ok(match self {
            GraphSpec::Demo => match algorithm {
                Algorithm::PageRank => graphs::generators::demo_pagerank(),
                _ => graphs::generators::demo_components(),
            },
            GraphSpec::Twitter(n) => graphs::generators::preferential_attachment(*n, 3, 2015),
            GraphSpec::Grid(w, h) => graphs::generators::grid(*w, *h),
            GraphSpec::Path(n) => graphs::generators::path(*n),
            GraphSpec::File(path) => {
                let directed = algorithm == Algorithm::PageRank;
                graphs::io::load_edge_list(std::path::Path::new(path), directed)
                    .map_err(|e| format!("cannot load {path}: {e}"))?
                    .graph
            }
        })
    }
}

/// Parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Invocation {
    /// Which demo to run.
    pub algorithm: Algorithm,
    /// Which input graph to run it on.
    pub graph: GraphSpec,
    /// Recovery strategy.
    pub strategy: Strategy,
    /// Failure schedule.
    pub scenario: FailureScenario,
    /// Number of partitions / simulated workers.
    pub parallelism: usize,
    /// Iteration cap.
    pub max_iterations: u32,
    /// Print the dataflow plan instead of running.
    pub explain_only: bool,
    /// Capture telemetry and write the journal (plus spans and report
    /// sidecars) to this path.
    pub journal: Option<PathBuf>,
    /// Run on `N` real worker processes (`optirec worker`) instead of the
    /// in-process simulated cluster. Only cc and pagerank are compiled into
    /// the worker binary.
    pub cluster: Option<usize>,
    /// With `--cluster`: SIGKILL worker `W` while superstep `S` is in
    /// flight, as `(S, W)`.
    pub kill: Option<(u32, usize)>,
}

/// Parse a strategy spec: `optimistic`, `restart`, `ignore`,
/// `checkpoint:K`, `incremental:K`.
pub fn parse_strategy(raw: &str) -> Result<Strategy, String> {
    match raw {
        "optimistic" => Ok(Strategy::Optimistic),
        "restart" => Ok(Strategy::Restart),
        "ignore" => Ok(Strategy::Ignore),
        other => {
            if let Some(k) = other.strip_prefix("checkpoint:") {
                return k
                    .parse()
                    .map(|interval| Strategy::Checkpoint { interval })
                    .map_err(|_| format!("invalid checkpoint interval {k:?}"));
            }
            if let Some(k) = other.strip_prefix("incremental:") {
                return k
                    .parse()
                    .map(|full_interval| Strategy::IncrementalCheckpoint { full_interval })
                    .map_err(|_| format!("invalid incremental interval {k:?}"));
            }
            Err(format!(
                "unknown strategy {other:?}; expected optimistic | checkpoint:K | incremental:K | restart | ignore"
            ))
        }
    }
}

/// Parse one failure event: `SUPERSTEP:P1,P2,...`.
pub fn parse_failure(raw: &str) -> Result<(u32, Vec<usize>), String> {
    let (superstep, partitions) = raw
        .split_once(':')
        .ok_or_else(|| format!("failure spec must be SUPERSTEP:P1,P2 — got {raw:?}"))?;
    let superstep =
        superstep.parse().map_err(|_| format!("invalid failure superstep {superstep:?}"))?;
    let partitions: Result<Vec<usize>, String> = partitions
        .split(',')
        .map(|p| p.parse().map_err(|_| format!("invalid partition id {p:?}")))
        .collect();
    let partitions = partitions?;
    if partitions.is_empty() {
        return Err("failure spec needs at least one partition".into());
    }
    Ok((superstep, partitions))
}

/// Parse a SIGKILL plan for `--kill`: `SUPERSTEP:WORKER`.
pub fn parse_kill(raw: &str) -> Result<(u32, usize), String> {
    let (superstep, worker) = raw
        .split_once(':')
        .ok_or_else(|| format!("kill spec must be SUPERSTEP:WORKER — got {raw:?}"))?;
    let superstep =
        superstep.parse().map_err(|_| format!("invalid kill superstep {superstep:?}"))?;
    let worker = worker.parse().map_err(|_| format!("invalid kill worker {worker:?}"))?;
    Ok((superstep, worker))
}

/// Valid flags of the run subcommand, listed in unknown-flag errors.
pub const RUN_FLAGS: &[&str] = &[
    "--graph",
    "--strategy",
    "--fail",
    "--parallelism",
    "--max-iterations",
    "--explain",
    "--journal",
    "--cluster",
    "--kill",
];

/// Usage text.
pub fn usage() -> &'static str {
    "optirec — optimistic recovery for iterative dataflows, demo launcher

USAGE:
    optirec <ALGORITHM> [OPTIONS]
    optirec inspect <timeline|profile|convergence|diff> [OPTIONS]
    optirec worker [--listen ADDR]

ALGORITHMS:
    cc | pagerank | sssp | reachability | kmeans | jacobi | als

OPTIONS:
    --graph <SPEC>        demo | twitter:N | grid:WxH | path:N | file:PATH   [demo]
    --strategy <SPEC>     optimistic | checkpoint:K | incremental:K | restart | ignore   [optimistic]
    --fail <S:P1,P2>      fail partitions P1,P2 at superstep S (repeatable)
    --parallelism <N>     number of partitions / simulated workers   [4]
    --max-iterations <N>  iteration cap   [200]
    --explain             print the dataflow plan instead of running
    --journal <PATH>      capture telemetry: write the event journal there,
                          plus spans and report sidecars (inspect reads them)
    --cluster <N>         run on N real worker processes over loopback TCP
                          (cc and pagerank only; spawns `optirec worker`)
    --kill <S:W>          with --cluster: SIGKILL worker W while superstep S
                          is in flight; recovery is optimistic compensation

EXAMPLES:
    optirec cc --fail 3:1 --fail 5:0,2
    optirec pagerank --graph twitter:50000 --strategy checkpoint:2 --parallelism 8
    optirec cc --journal results/cc_journal.jsonl
    optirec cc --cluster 2 --kill 2:1 --journal results/cluster_journal.jsonl
    optirec inspect convergence --journal results/cc_journal.jsonl
    optirec inspect diff --baseline results/base_journal.jsonl --journal results/cc_journal.jsonl

The `worker` subcommand starts a cluster worker process: it binds ADDR
(default 127.0.0.1:0), prints `OPTIREC_WORKER_LISTENING <port>`, and serves
coordinator connections until killed. `--cluster` spawns its own workers;
start workers manually only to watch the two-terminal demo from README.md.
"
}

/// Usage text of the `inspect` subcommands.
pub fn inspect_usage() -> &'static str {
    "optirec inspect — analyse a captured run

USAGE:
    optirec inspect timeline    --journal <PATH> [--spans <PATH>]
    optirec inspect profile     --report <PATH> [--straggler-factor <F>]
    optirec inspect convergence --journal <PATH> [--csv <PATH>] [--html <PATH>]
    optirec inspect diff        --baseline <PATH> --journal <PATH>
                                [--baseline-report <PATH>] [--report <PATH>]
                                [--superstep-pct <P>] [--wall-pct <P>]
                                [--redundant-steps <N>] [--recovery-pct <P>]

Paths point at JSONL journals written with --journal (or by the figure
binaries); spans and report sidecars are found automatically next to the
journal when present. `diff` exits nonzero when the current run regresses
beyond the thresholds (defaults: supersteps +0%, wall +20%, redundant
supersteps +0, recovery wall +25%).
"
}

/// One `optirec inspect` invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum InspectCommand {
    /// ASCII Gantt of supersteps with failure/recovery markers.
    Timeline {
        /// Event journal to fold.
        journal: PathBuf,
        /// Explicit spans sidecar (auto-derived from the journal otherwise).
        spans: Option<PathBuf>,
    },
    /// Per-partition / per-operator time breakdown.
    Profile {
        /// Metrics-wrapped (or bare) run report.
        report: PathBuf,
        /// Straggler threshold as a multiple of the median partition.
        straggler_factor: f64,
    },
    /// Convergence curves with recovery overlays.
    Convergence {
        /// Event journal to fold.
        journal: PathBuf,
        /// Also export the per-superstep table as CSV.
        csv: Option<PathBuf>,
        /// Also export an HTML page with SVG charts.
        html: Option<PathBuf>,
    },
    /// Compare two runs and flag regressions.
    Diff {
        /// Baseline journal.
        baseline: PathBuf,
        /// Current journal.
        journal: PathBuf,
        /// Explicit baseline report (auto-derived otherwise).
        baseline_report: Option<PathBuf>,
        /// Explicit current report (auto-derived otherwise).
        report: Option<PathBuf>,
        /// Regression thresholds.
        options: DiffOptions,
    },
}

fn unknown_flag(flag: &str, valid: &[&str]) -> String {
    format!("unknown flag {flag:?}; valid flags: {}", valid.join(", "))
}

/// Parse the arguments following `inspect`.
pub fn parse_inspect(args: &[String]) -> Result<InspectCommand, String> {
    let mut iter = args.iter();
    let view =
        iter.next().ok_or_else(|| format!("missing inspect subcommand\n\n{}", inspect_usage()))?;
    let mut flags: Vec<(String, String)> = Vec::new();
    while let Some(flag) = iter.next() {
        let value = iter.next().ok_or_else(|| format!("flag {flag} needs a value"))?;
        flags.push((flag.clone(), value.clone()));
    }
    let take = |flags: &mut Vec<(String, String)>, name: &str| -> Option<String> {
        flags.iter().position(|(f, _)| f == name).map(|i| flags.remove(i).1)
    };
    let require = |value: Option<String>, name: &str| -> Result<PathBuf, String> {
        value.map(PathBuf::from).ok_or_else(|| format!("inspect {view} requires {name} <PATH>"))
    };
    let parse_f64 = |raw: String, name: &str| -> Result<f64, String> {
        raw.parse().map_err(|_| format!("invalid value for {name}: {raw:?}"))
    };

    let command = match view.as_str() {
        "timeline" => {
            let valid = ["--journal", "--spans"];
            let journal = require(take(&mut flags, "--journal"), "--journal")?;
            let spans = take(&mut flags, "--spans").map(PathBuf::from);
            if let Some((flag, _)) = flags.first() {
                return Err(unknown_flag(flag, &valid));
            }
            InspectCommand::Timeline { journal, spans }
        }
        "profile" => {
            let valid = ["--report", "--straggler-factor"];
            let report = require(take(&mut flags, "--report"), "--report")?;
            let straggler_factor = match take(&mut flags, "--straggler-factor") {
                Some(raw) => parse_f64(raw, "--straggler-factor")?,
                None => 2.0,
            };
            if let Some((flag, _)) = flags.first() {
                return Err(unknown_flag(flag, &valid));
            }
            InspectCommand::Profile { report, straggler_factor }
        }
        "convergence" => {
            let valid = ["--journal", "--csv", "--html"];
            let journal = require(take(&mut flags, "--journal"), "--journal")?;
            let csv = take(&mut flags, "--csv").map(PathBuf::from);
            let html = take(&mut flags, "--html").map(PathBuf::from);
            if let Some((flag, _)) = flags.first() {
                return Err(unknown_flag(flag, &valid));
            }
            InspectCommand::Convergence { journal, csv, html }
        }
        "diff" => {
            let valid = [
                "--baseline",
                "--journal",
                "--baseline-report",
                "--report",
                "--superstep-pct",
                "--wall-pct",
                "--redundant-steps",
                "--recovery-pct",
            ];
            let baseline = require(take(&mut flags, "--baseline"), "--baseline")?;
            let journal = require(take(&mut flags, "--journal"), "--journal")?;
            let baseline_report = take(&mut flags, "--baseline-report").map(PathBuf::from);
            let report = take(&mut flags, "--report").map(PathBuf::from);
            let mut options = DiffOptions::default();
            if let Some(raw) = take(&mut flags, "--superstep-pct") {
                options.superstep_pct = parse_f64(raw, "--superstep-pct")?;
            }
            if let Some(raw) = take(&mut flags, "--wall-pct") {
                options.wall_pct = parse_f64(raw, "--wall-pct")?;
            }
            if let Some(raw) = take(&mut flags, "--redundant-steps") {
                options.redundant_steps = raw
                    .parse()
                    .map_err(|_| format!("invalid value for --redundant-steps: {raw:?}"))?;
            }
            if let Some(raw) = take(&mut flags, "--recovery-pct") {
                options.recovery_pct = parse_f64(raw, "--recovery-pct")?;
            }
            if let Some((flag, _)) = flags.first() {
                return Err(unknown_flag(flag, &valid));
            }
            InspectCommand::Diff { baseline, journal, baseline_report, report, options }
        }
        other => {
            return Err(format!(
                "unknown inspect subcommand {other:?}; expected timeline | profile | \
                 convergence | diff\n\n{}",
                inspect_usage()
            ))
        }
    };
    Ok(command)
}

/// Parse a full argument list (without the program name).
pub fn parse_args(args: &[String]) -> Result<Invocation, String> {
    let mut iter = args.iter();
    let algorithm =
        Algorithm::parse(iter.next().ok_or_else(|| format!("missing algorithm\n\n{}", usage()))?)?;
    let mut invocation = Invocation {
        algorithm,
        graph: GraphSpec::Demo,
        strategy: Strategy::Optimistic,
        scenario: FailureScenario::none(),
        parallelism: 4,
        max_iterations: 200,
        explain_only: false,
        journal: None,
        cluster: None,
        kill: None,
    };
    while let Some(flag) = iter.next() {
        let mut value = || iter.next().ok_or_else(|| format!("flag {flag} needs a value")).cloned();
        match flag.as_str() {
            "--graph" => invocation.graph = GraphSpec::parse(&value()?)?,
            "--strategy" => invocation.strategy = parse_strategy(&value()?)?,
            "--fail" => {
                let (superstep, partitions) = parse_failure(&value()?)?;
                invocation.scenario = invocation.scenario.fail_at(superstep, &partitions);
            }
            "--parallelism" => {
                invocation.parallelism =
                    value()?.parse().map_err(|_| "invalid parallelism".to_string())?;
            }
            "--max-iterations" => {
                invocation.max_iterations =
                    value()?.parse().map_err(|_| "invalid iteration cap".to_string())?;
            }
            "--explain" => invocation.explain_only = true,
            "--journal" => invocation.journal = Some(PathBuf::from(value()?)),
            "--cluster" => {
                let workers: usize =
                    value()?.parse().map_err(|_| "invalid worker count".to_string())?;
                if workers == 0 {
                    return Err("--cluster needs at least one worker".into());
                }
                invocation.cluster = Some(workers);
            }
            "--kill" => invocation.kill = Some(parse_kill(&value()?)?),
            other => return Err(format!("{}\n\n{}", unknown_flag(other, RUN_FLAGS), usage())),
        }
    }
    if invocation.kill.is_some() && invocation.cluster.is_none() {
        return Err("--kill needs --cluster: it SIGKILLs a real worker process".into());
    }
    if invocation.cluster.is_some() {
        if invocation.strategy != Strategy::Optimistic {
            return Err(
                "--cluster always recovers via optimistic compensation; drop --strategy".into()
            );
        }
        if !invocation.scenario.is_failure_free() {
            return Err(
                "--fail simulates partition loss in-process; use --kill S:W with --cluster".into(),
            );
        }
    }
    Ok(invocation)
}

/// Parse the arguments following `worker`; returns the listen address.
pub fn parse_worker(args: &[String]) -> Result<String, String> {
    let mut listen = "127.0.0.1:0".to_string();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--listen" => {
                listen =
                    iter.next().ok_or_else(|| "flag --listen needs a value".to_string())?.clone();
            }
            other => return Err(unknown_flag(other, &["--listen"])),
        }
    }
    Ok(listen)
}

/// Assemble the fault-tolerance config of an invocation.
pub fn ft_config(invocation: &Invocation) -> algos::FtConfig {
    algos::FtConfig {
        strategy: invocation.strategy,
        scenario: invocation.scenario.clone(),
        checkpoint_cost: CostModel::distributed_fs(),
        checkpoint_on_disk: false,
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_a_full_invocation() {
        let invocation = parse_args(&args(&[
            "cc",
            "--graph",
            "twitter:5000",
            "--strategy",
            "checkpoint:2",
            "--fail",
            "3:1,2",
            "--fail",
            "5:0",
            "--parallelism",
            "8",
        ]))
        .unwrap();
        assert_eq!(invocation.algorithm, Algorithm::ConnectedComponents);
        assert_eq!(invocation.graph, GraphSpec::Twitter(5000));
        assert_eq!(invocation.strategy, Strategy::Checkpoint { interval: 2 });
        assert_eq!(invocation.parallelism, 8);
        assert_eq!(invocation.scenario.events().len(), 2);
    }

    #[test]
    fn defaults_are_sane() {
        let invocation = parse_args(&args(&["pagerank"])).unwrap();
        assert_eq!(invocation.algorithm, Algorithm::PageRank);
        assert_eq!(invocation.graph, GraphSpec::Demo);
        assert_eq!(invocation.strategy, Strategy::Optimistic);
        assert!(invocation.scenario.is_failure_free());
        assert!(!invocation.explain_only);
    }

    #[test]
    fn rejects_unknown_inputs() {
        assert!(parse_args(&args(&["frobnicate"])).is_err());
        assert!(parse_args(&args(&["cc", "--strategy", "lineage"])).is_err());
        assert!(parse_args(&args(&["cc", "--graph", "torus:9"])).is_err());
        assert!(parse_args(&args(&["cc", "--fail", "nope"])).is_err());
        assert!(parse_args(&args(&["cc", "--fail"])).is_err());
        assert!(parse_args(&args(&["cc", "--wat", "9"])).is_err());
        assert!(parse_args(&[]).is_err());
    }

    #[test]
    fn graph_specs_parse() {
        assert_eq!(GraphSpec::parse("grid:3x4").unwrap(), GraphSpec::Grid(3, 4));
        assert_eq!(GraphSpec::parse("path:10").unwrap(), GraphSpec::Path(10));
        assert_eq!(
            GraphSpec::parse("file:/tmp/g.txt").unwrap(),
            GraphSpec::File("/tmp/g.txt".into())
        );
        assert!(GraphSpec::parse("grid:3").is_err());
        assert!(GraphSpec::parse("twitter:abc").is_err());
    }

    #[test]
    fn strategy_specs_parse() {
        assert_eq!(
            parse_strategy("incremental:4").unwrap(),
            Strategy::IncrementalCheckpoint { full_interval: 4 }
        );
        assert_eq!(parse_strategy("restart").unwrap(), Strategy::Restart);
        assert!(parse_strategy("checkpoint:x").is_err());
    }

    #[test]
    fn failure_specs_parse() {
        assert_eq!(parse_failure("3:1,2").unwrap(), (3, vec![1, 2]));
        assert_eq!(parse_failure("0:0").unwrap(), (0, vec![0]));
        assert!(parse_failure("3:").is_err());
        assert!(parse_failure("3").is_err());
    }

    #[test]
    fn demo_graphs_build_per_algorithm() {
        let cc = GraphSpec::Demo.build(Algorithm::ConnectedComponents).unwrap();
        assert!(!cc.is_directed());
        let pr = GraphSpec::Demo.build(Algorithm::PageRank).unwrap();
        assert!(pr.is_directed());
        let grid = GraphSpec::Grid(3, 3).build(Algorithm::Sssp).unwrap();
        assert_eq!(grid.num_vertices(), 9);
    }

    #[test]
    fn ft_config_carries_strategy_and_scenario() {
        let invocation =
            parse_args(&args(&["cc", "--strategy", "incremental:4", "--fail", "2:1"])).unwrap();
        let ft = ft_config(&invocation);
        assert_eq!(ft.strategy, Strategy::IncrementalCheckpoint { full_interval: 4 });
        assert_eq!(ft.scenario.events(), &[(2, vec![1])]);
    }

    #[test]
    fn journal_flag_parses_and_unknown_flags_list_the_valid_set() {
        let invocation = parse_args(&args(&["cc", "--journal", "/tmp/run_journal.jsonl"])).unwrap();
        assert_eq!(invocation.journal, Some(PathBuf::from("/tmp/run_journal.jsonl")));

        let err = parse_args(&args(&["cc", "--journl", "x"])).unwrap_err();
        assert!(err.contains("unknown flag \"--journl\""), "{err}");
        assert!(err.contains("--journal"), "{err}");
        assert!(err.contains("--strategy"), "{err}");
    }

    #[test]
    fn inspect_subcommands_parse() {
        let cmd = parse_inspect(&args(&["timeline", "--journal", "j.jsonl"])).unwrap();
        assert_eq!(
            cmd,
            InspectCommand::Timeline { journal: PathBuf::from("j.jsonl"), spans: None }
        );

        let cmd =
            parse_inspect(&args(&["convergence", "--journal", "j.jsonl", "--csv", "out.csv"]))
                .unwrap();
        match cmd {
            InspectCommand::Convergence { journal, csv, html } => {
                assert_eq!(journal, PathBuf::from("j.jsonl"));
                assert_eq!(csv, Some(PathBuf::from("out.csv")));
                assert_eq!(html, None);
            }
            other => panic!("unexpected {other:?}"),
        }

        let cmd = parse_inspect(&args(&[
            "diff",
            "--baseline",
            "a.jsonl",
            "--journal",
            "b.jsonl",
            "--redundant-steps",
            "2",
            "--wall-pct",
            "50",
        ]))
        .unwrap();
        match cmd {
            InspectCommand::Diff { options, .. } => {
                assert_eq!(options.redundant_steps, 2);
                assert_eq!(options.wall_pct, 50.0);
                assert_eq!(options.superstep_pct, 0.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn inspect_rejects_bad_invocations_listing_valid_flags() {
        assert!(parse_inspect(&[]).is_err());
        assert!(parse_inspect(&args(&["frob"])).is_err());
        // Missing the required journal.
        assert!(parse_inspect(&args(&["timeline"])).is_err());
        // Unknown flag errors name the valid set.
        let err =
            parse_inspect(&args(&["profile", "--report", "r.json", "--wat", "1"])).unwrap_err();
        assert!(err.contains("--straggler-factor"), "{err}");
        let err = parse_inspect(&args(&["diff", "--baseline", "a", "--journal", "b", "--x", "1"]))
            .unwrap_err();
        assert!(err.contains("--recovery-pct"), "{err}");
    }

    #[test]
    fn cluster_flags_parse_and_cross_validate() {
        let invocation = parse_args(&args(&["cc", "--cluster", "2", "--kill", "3:1"])).unwrap();
        assert_eq!(invocation.cluster, Some(2));
        assert_eq!(invocation.kill, Some((3, 1)));

        // --kill without --cluster, zero workers, and combinations that the
        // multi-process backend cannot honor are rejected with guidance.
        assert!(parse_args(&args(&["cc", "--kill", "3:1"])).is_err());
        assert!(parse_args(&args(&["cc", "--cluster", "0"])).is_err());
        assert!(parse_args(&args(&["cc", "--cluster", "x"])).is_err());
        let err =
            parse_args(&args(&["cc", "--cluster", "2", "--strategy", "restart"])).unwrap_err();
        assert!(err.contains("optimistic"), "{err}");
        let err = parse_args(&args(&["cc", "--cluster", "2", "--fail", "1:0"])).unwrap_err();
        assert!(err.contains("--kill"), "{err}");
        assert!(parse_kill("2").is_err());
        assert!(parse_kill("a:1").is_err());
    }

    #[test]
    fn worker_args_parse() {
        assert_eq!(parse_worker(&[]).unwrap(), "127.0.0.1:0");
        assert_eq!(parse_worker(&args(&["--listen", "0.0.0.0:7000"])).unwrap(), "0.0.0.0:7000");
        assert!(parse_worker(&args(&["--listen"])).is_err());
        assert!(parse_worker(&args(&["--port", "7000"])).is_err());
    }

    #[test]
    fn twitter_spec_builds_a_graph_of_requested_size() {
        let graph = GraphSpec::Twitter(200).build(Algorithm::ConnectedComponents).unwrap();
        assert_eq!(graph.num_vertices(), 200);
        assert!(!graph.is_directed());
    }
}
